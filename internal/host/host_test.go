package host

import (
	"errors"
	"testing"

	"cubeftl/internal/ftl"
	"cubeftl/internal/sim"
	"cubeftl/internal/ssd"
)

func newTestController(seed uint64) *ftl.Controller {
	eng := sim.NewEngine()
	cfg := ssd.DefaultConfig()
	cfg.Channels = 1
	cfg.DiesPerChannel = 2
	cfg.Chip.Process.BlocksPerChip = 24
	cfg.Chip.Process.Layers = 8
	cfg.Seed = seed
	dev := ssd.New(eng, cfg)
	ccfg := ftl.DefaultControllerConfig()
	ccfg.WriteBufferPages = 48
	return ftl.NewController(dev, ftl.NewPagePolicy(), ccfg)
}

// Arbiter unit tests (pure Pick logic, no device).

func states(qs ...QueueState) []QueueState { return qs }

func TestRoundRobinCycles(t *testing.T) {
	a := NewRoundRobin()
	el := states(QueueState{Index: 0}, QueueState{Index: 1}, QueueState{Index: 2})
	var got []int
	for i := 0; i < 6; i++ {
		got = append(got, a.Pick(el, 0))
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grant sequence %v, want %v", got, want)
		}
	}
	// A vanished queue is skipped without breaking the cycle.
	if idx := a.Pick(states(QueueState{Index: 0}, QueueState{Index: 1}), 0); idx != 0 {
		t.Fatalf("after wrap expected 0, got %d", idx)
	}
}

func TestWRRHonorsWeights(t *testing.T) {
	a := NewWeightedRoundRobin()
	el := states(QueueState{Index: 0, Weight: 3}, QueueState{Index: 1, Weight: 1})
	counts := map[int]int{}
	for i := 0; i < 400; i++ {
		counts[a.Pick(el, 0)]++
	}
	if counts[0] != 300 || counts[1] != 100 {
		t.Fatalf("grant split %v, want 300/100", counts)
	}
}

func TestWRRWorkConserving(t *testing.T) {
	a := NewWeightedRoundRobin()
	// Only the light queue is backlogged: it gets every grant.
	el := states(QueueState{Index: 1, Weight: 1})
	for i := 0; i < 10; i++ {
		if a.Pick(el, 0) != 1 {
			t.Fatal("WRR idled a grant while queue 1 had work")
		}
	}
}

func TestStrictPriorityPrefersUrgent(t *testing.T) {
	a := NewStrictPriority(0)
	el := states(QueueState{Index: 0, Priority: 0}, QueueState{Index: 1, Priority: 5})
	for i := 0; i < 10; i++ {
		if a.Pick(el, 0) != 1 {
			t.Fatal("strict priority granted the low-priority queue")
		}
	}
}

func TestStrictPriorityStarvationGuard(t *testing.T) {
	a := NewStrictPriority(1000)
	el := states(
		QueueState{Index: 0, Priority: 0, HeadWaitNs: 1500},
		QueueState{Index: 1, Priority: 5, HeadWaitNs: 10},
	)
	if a.Pick(el, 0) != 0 {
		t.Fatal("guard did not rescue the starving low-priority queue")
	}
	// Below the guard threshold, priority rules again.
	el[0].HeadWaitNs = 500
	if a.Pick(el, 0) != 1 {
		t.Fatal("guard fired below its threshold")
	}
	// A freshly rescued queue must wait a full guard period before the
	// next rescue, even if its new head is already over the threshold —
	// otherwise a saturating low-priority stream monopolizes the guard.
	el[0].HeadWaitNs = 1500
	if a.Pick(el, 500) != 1 {
		t.Fatal("guard rescued the same queue twice within one guard period")
	}
	if a.Pick(el, 1200) != 0 {
		t.Fatal("guard did not re-rescue after a full guard period")
	}
}

func TestNewArbiterNames(t *testing.T) {
	for _, name := range []string{"rr", "wrr", "prio"} {
		a, err := NewArbiter(name, 0)
		if err != nil || a.Name() != name {
			t.Fatalf("NewArbiter(%q) = %v, %v", name, a, err)
		}
	}
	if a, err := NewArbiter("", 0); err != nil || a.Name() != "rr" {
		t.Fatalf("default arbiter = %v, %v", a, err)
	}
	if _, err := NewArbiter("nope", 0); err == nil {
		t.Fatal("unknown arbiter accepted")
	}
}

// Host-level tests against a real controller.

func TestSubmitValidation(t *testing.T) {
	ctrl := newTestController(1)
	if _, err := New(ctrl, Config{}); !errors.Is(err, ErrNoQueues) {
		t.Fatalf("empty config: %v", err)
	}
	h, err := New(ctrl, Config{Queues: []QueueConfig{{Tenant: "t", Depth: 2}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Submit(3, Command{Op: Read}); !errors.Is(err, ErrBadQueue) {
		t.Fatalf("bad queue: %v", err)
	}
}

func TestQueueFullBackpressure(t *testing.T) {
	ctrl := newTestController(2)
	// Depth 4, but only 1 device slot: submissions 5+ must bounce.
	h, err := New(ctrl, Config{
		Queues:        []QueueConfig{{Tenant: "t", Depth: 4}},
		DispatchWidth: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	accepted := 0
	for i := 0; i < 10; i++ {
		err := h.Submit(0, Command{Op: Read, LPN: int64(i)})
		if err == nil {
			accepted++
		} else if !errors.Is(err, ErrQueueFull) {
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if accepted != 4 {
		t.Fatalf("accepted %d, want 4 (queue depth)", accepted)
	}
	if got := h.Stats(0).QueueFulls; got != 6 {
		t.Fatalf("QueueFulls = %d, want 6", got)
	}
	h.Drain()
	if h.Stats(0).Completed != 4 || h.Outstanding() != 0 {
		t.Fatalf("completed %d, outstanding %d", h.Stats(0).Completed, h.Outstanding())
	}
	// Capacity freed: submissions flow again.
	if err := h.Submit(0, Command{Op: Read}); err != nil {
		t.Fatalf("submit after drain: %v", err)
	}
	h.Drain()
}

func TestCompletionAccounting(t *testing.T) {
	ctrl := newTestController(3)
	h, _ := New(ctrl, Config{Queues: []QueueConfig{{Tenant: "t", Depth: 8}}})
	var comps []Completion
	for i := 0; i < 4; i++ {
		op := Read
		if i%2 == 1 {
			op = Write
		}
		err := h.Submit(0, Command{Op: op, LPN: int64(i * 3), Pages: 2, Done: func(c Completion) {
			comps = append(comps, c)
		}})
		if err != nil {
			t.Fatal(err)
		}
	}
	h.Drain()
	st := h.Stats(0)
	if len(comps) != 4 || st.Completed != 4 || st.Reads != 2 || st.Writes != 2 {
		t.Fatalf("completions %d, stats %+v", len(comps), st)
	}
	if st.ReadLat.N() != 2 || st.WriteLat.N() != 2 {
		t.Fatalf("latency samples %d/%d", st.ReadLat.N(), st.WriteLat.N())
	}
	for _, c := range comps {
		if c.DoneNs < c.SubmitNs || c.LatencyNs != c.DoneNs-c.SubmitNs {
			t.Fatalf("inconsistent completion %+v", c)
		}
		if c.LatencyNs <= 0 {
			t.Fatalf("zero-latency completion %+v", c)
		}
	}
	if st.Grants != 4 || h.Grants() != 4 {
		t.Fatalf("grants %d/%d", st.Grants, h.Grants())
	}
}

func TestTokenBucketRateLimit(t *testing.T) {
	ctrl := newTestController(4)
	// 10k IOPS cap, burst 1: steady state one fetch per 100 us.
	h, _ := New(ctrl, Config{
		Queues: []QueueConfig{{Tenant: "t", Depth: 4, RateIOPS: 10000, BurstIOs: 1}},
	})
	eng := ctrl.Engine()
	issued, completed := 0, 0
	var pump func()
	pump = func() {
		for issued < 40 {
			err := h.Submit(0, Command{Op: Read, LPN: int64(issued % 50), Done: func(Completion) {
				completed++
				pump()
			}})
			if err != nil {
				return // queue full: resume on a completion
			}
			issued++
		}
	}
	pump()
	eng.RunWhile(func() bool { return completed < 40 })
	st := h.Stats(0)
	elapsed := st.LastDoneNs - st.FirstSubmitNs
	// 40 commands at 10k IOPS need ~3.9 ms of pacing (39 refill gaps).
	if elapsed < 3900*sim.Microsecond {
		t.Fatalf("rate limit not enforced: 40 cmds in %d ns", elapsed)
	}
	if st.Throttles == 0 {
		t.Fatal("no throttle events recorded")
	}
	if ips := st.IOPS(); ips > 10500 {
		t.Fatalf("IOPS %.0f exceeds 10k cap", ips)
	}
}

func TestUnlimitedQueueNotThrottled(t *testing.T) {
	ctrl := newTestController(5)
	h, _ := New(ctrl, Config{Queues: []QueueConfig{{Tenant: "t", Depth: 8}}})
	for i := 0; i < 8; i++ {
		if err := h.Submit(0, Command{Op: Read, LPN: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	h.Drain()
	if h.Stats(0).Throttles != 0 {
		t.Fatal("unlimited queue throttled")
	}
}

func TestGrantTrace(t *testing.T) {
	ctrl := newTestController(6)
	h, _ := New(ctrl, Config{
		Queues: []QueueConfig{
			{Tenant: "a", Depth: 4},
			{Tenant: "b", Depth: 4},
		},
		DispatchWidth: 1,
		TraceCap:      16,
	})
	for i := 0; i < 4; i++ {
		h.Submit(0, Command{Op: Read, LPN: int64(i)})
		h.Submit(1, Command{Op: Read, LPN: int64(i + 10)})
	}
	h.Drain()
	if h.Grants() != 8 || len(h.Trace()) != 8 {
		t.Fatalf("grants %d trace %v", h.Grants(), h.Trace())
	}
	// Round-robin over two backlogged queues strictly alternates.
	for i, q := range h.Trace() {
		if q != i%2 {
			t.Fatalf("trace %v not alternating", h.Trace())
		}
	}
	if h.TraceHash() == 0 {
		t.Fatal("trace hash not maintained")
	}
}

func TestHostDeterministicReplay(t *testing.T) {
	run := func() (uint64, int64, int64) {
		ctrl := newTestController(7)
		h, _ := New(ctrl, Config{
			Queues: []QueueConfig{
				{Tenant: "a", Depth: 8, Weight: 3},
				{Tenant: "b", Depth: 8, Weight: 1, RateIOPS: 50000},
			},
			Arb:           NewWeightedRoundRobin(),
			DispatchWidth: 4,
		})
		eng := ctrl.Engine()
		done := 0
		var pumps [2]func()
		for q := 0; q < 2; q++ {
			qid := q
			issued := 0
			pumps[q] = func() {
				for issued < 100 {
					op := Read
					if (issued+qid)%3 == 0 {
						op = Write
					}
					err := h.Submit(qid, Command{Op: op, LPN: int64((issued * 7) % 200), Done: func(Completion) {
						done++
						pumps[qid]()
					}})
					if err != nil {
						return
					}
					issued++
				}
			}
		}
		pumps[0]()
		pumps[1]()
		eng.RunWhile(func() bool { return done < 200 })
		return h.TraceHash(), h.Stats(0).ReadLat.Percentile(99), h.Stats(1).ReadLat.Percentile(99)
	}
	h1, a1, b1 := run()
	h2, a2, b2 := run()
	if h1 != h2 || a1 != a2 || b1 != b2 {
		t.Fatalf("replay diverged: hash %x/%x p99 %d/%d %d/%d", h1, h2, a1, a2, b1, b2)
	}
}

func TestOnlineWeightAndRateChanges(t *testing.T) {
	ctrl := newTestController(11)
	h, err := New(ctrl, Config{
		Queues: []QueueConfig{
			{Tenant: "a", Depth: 8, Weight: 1},
			{Tenant: "b", Depth: 8, Weight: 1},
		},
		Arb:           NewWeightedRoundRobin(),
		DispatchWidth: 1,
		TraceCap:      64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.SetWeight(0, 8); err != nil {
		t.Fatal(err)
	}
	if err := h.SetWeight(1, 0); err != nil { // clamps to 1
		t.Fatal(err)
	}
	if h.Weight(0) != 8 || h.Weight(1) != 1 {
		t.Fatalf("weights = %d/%d, want 8/1", h.Weight(0), h.Weight(1))
	}
	if err := h.SetWeight(7, 1); !errors.Is(err, ErrBadQueue) {
		t.Fatalf("SetWeight on bad queue: %v", err)
	}
	if err := h.SetRate(9, 100); !errors.Is(err, ErrBadQueue) {
		t.Fatalf("SetRate on bad queue: %v", err)
	}

	// Saturate both queues; the online 8:1 weights must shape grants.
	submit := func(qid, n int) {
		for i := 0; i < n; i++ {
			lpn := int64(qid*1000 + i)
			if err := h.Submit(qid, Command{Op: Write, LPN: lpn}); err != nil {
				t.Fatalf("submit q%d: %v", qid, err)
			}
		}
	}
	submit(0, 8)
	submit(1, 8)
	h.Drain()
	// With online weights 8:1 the first WRR cycle grants q0 eight times
	// before q1's single credit; count q0 wins among the first 8 grants.
	trace := h.Trace()
	q0Early := 0
	for _, qid := range trace[:8] {
		if qid == 0 {
			q0Early++
		}
	}
	if q0Early < 7 {
		t.Fatalf("online weight had no effect: first 8 grants %v", trace[:8])
	}

	// A rate cap applied online must throttle, and removing it must not.
	if err := h.SetRate(1, 1000); err != nil { // 1k IOPS: ~1ms per token
		t.Fatal(err)
	}
	submit(1, 8) // consumes the initially-full burst bucket
	h.Drain()
	submit(1, 8) // bucket nearly empty: fetches must wait on refill
	h.Drain()
	if h.Stats(1).Throttles == 0 {
		t.Fatal("online rate cap produced no throttles")
	}
	throttled := h.Stats(1).Throttles
	if err := h.SetRate(1, 0); err != nil {
		t.Fatal(err)
	}
	submit(1, 8)
	h.Drain()
	if h.Stats(1).Throttles != throttled {
		t.Fatalf("uncapped queue kept throttling: %d -> %d", throttled, h.Stats(1).Throttles)
	}
}
