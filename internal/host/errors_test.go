package host

import (
	"errors"
	"testing"
)

// Every typed host error must survive the datapath's fmt.Errorf
// wrapping: callers branch with errors.Is, so a wrap that drops the
// sentinel silently breaks backpressure and config validation.
func TestTypedErrorsRoundTrip(t *testing.T) {
	ctrl := newTestController(1)

	if _, err := New(ctrl, Config{}); !errors.Is(err, ErrNoQueues) {
		t.Errorf("empty config: got %v, want ErrNoQueues", err)
	}

	h, err := New(ctrl, Config{Queues: []QueueConfig{{Tenant: "t", Depth: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Submit(5, Command{Op: Read, LPN: 0, Pages: 1}); !errors.Is(err, ErrBadQueue) {
		t.Errorf("bad qid: got %v, want ErrBadQueue", err)
	}
	if err := h.Submit(0, Command{Op: Read, LPN: 0, Pages: 1}); err != nil {
		t.Fatalf("first submit: %v", err)
	}
	err = h.Submit(0, Command{Op: Read, LPN: 1, Pages: 1})
	if !errors.Is(err, ErrQueueFull) {
		t.Errorf("over depth: got %v, want ErrQueueFull", err)
	}
	if err == ErrQueueFull {
		t.Error("ErrQueueFull returned bare: wrap must add tenant/depth context")
	}

	if _, err := NewArbiter("bogus", 0); !errors.Is(err, ErrUnknownArbiter) {
		t.Errorf("bogus arbiter: got %v, want ErrUnknownArbiter", err)
	}
	for _, name := range []string{"", "rr", "wrr", "prio"} {
		if _, err := NewArbiter(name, 0); err != nil {
			t.Errorf("NewArbiter(%q): %v", name, err)
		}
	}
}
