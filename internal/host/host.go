// Package host is the NVMe-style multi-queue front end of the
// simulated SSD: N submission/completion queue pairs, each owned by a
// named tenant, feeding the single FTL controller through the
// deterministic event engine.
//
// Each queue pair has bounded depth (admission control: a full queue
// rejects with ErrQueueFull so submitters feel backpressure instead of
// unbounded buffering), an optional token-bucket rate limit, and a WRR
// weight / strict-priority class consumed by the pluggable Arbiter.
// The device fetches commands from the queues through the arbiter
// whenever one of its DispatchWidth slots is free, so host-visible
// latency is SQ wait + device service — the controller's own histograms
// keep measuring the device-side component.
//
// Everything runs on the simulation engine's single-threaded event
// loop: the same configuration and seed replay bit-for-bit, including
// the arbitration grant sequence (exposed as an FNV-1a trace hash).
package host

import (
	"errors"
	"fmt"
	"math"

	"cubeftl/internal/ftl"
	"cubeftl/internal/metrics"
	"cubeftl/internal/sim"
	"cubeftl/internal/telemetry"
)

// Typed host-interface errors.
var (
	// ErrQueueFull reports a submission refused because the queue pair
	// is at its configured depth (admission control / backpressure).
	ErrQueueFull = errors.New("host: submission queue full")
	// ErrBadQueue reports a submission to a queue that does not exist.
	ErrBadQueue = errors.New("host: no such queue")
	// ErrNoQueues reports a host configured without queue pairs.
	ErrNoQueues = errors.New("host: at least one queue pair required")
	// ErrUnknownArbiter reports a NewArbiter name outside the supported
	// set (rr, wrr, prio).
	ErrUnknownArbiter = errors.New("host: unknown arbiter")
)

// Op is a host command direction.
type Op int

// Command operations.
const (
	Read Op = iota
	Write
)

func (o Op) String() string {
	if o == Read {
		return "read"
	}
	return "write"
}

// Command is one host I/O: an operation over Pages consecutive logical
// pages starting at LPN. Done (optional) runs in simulated time when
// every page has completed.
type Command struct {
	Op    Op
	LPN   int64
	Pages int
	Done  func(c Completion)
}

// Completion reports one finished command back to its submitter.
type Completion struct {
	SubmitNs sim.Time // when Submit accepted the command
	DoneNs   sim.Time // when the last page completed
	// LatencyNs is the host-visible latency: SQ wait + device service.
	LatencyNs int64
	// RejectedPages counts pages the controller refused synchronously
	// (degraded read-only device); they complete immediately.
	RejectedPages int
}

// QueueConfig describes one submission/completion queue pair.
type QueueConfig struct {
	// Tenant names the queue's owner (defaults to "q<index>").
	Tenant string
	// Depth bounds the queue occupancy — commands submitted but not yet
	// completed. Submissions beyond it fail with ErrQueueFull.
	// Defaults to 32.
	Depth int
	// Weight is the WRR share (>= 1; used by the "wrr" arbiter).
	Weight int
	// Priority is the strict-priority class; higher is more urgent
	// (used by the "prio" arbiter).
	Priority int
	// RateIOPS token-bucket rate limits the queue's command fetch rate;
	// 0 disables limiting. A multi-page command consumes one token.
	RateIOPS float64
	// BurstIOs is the token bucket capacity; defaults to Depth.
	BurstIOs int
}

// Config assembles a host front end.
type Config struct {
	Queues []QueueConfig
	// Arb picks the next queue to fetch from; nil selects round-robin.
	Arb Arbiter
	// DispatchWidth bounds commands concurrently outstanding at the
	// device across all queues — the shared resource arbitration
	// divides. 0 defaults to the sum of queue depths (no device-side
	// narrowing beyond per-queue backpressure).
	DispatchWidth int
	// TraceCap keeps the most recent grants in a replayable trace for
	// debugging (0 disables; the rolling hash is always maintained).
	TraceCap int
	// DieAffinity makes arbitration prefer queues whose head command
	// targets an idle NAND die (writes and buffered reads are
	// die-flexible and always eligible). When no candidate's die is
	// idle the full eligible set is used, so no queue can starve. With
	// a single queue this is a no-op. Off by default.
	DieAffinity bool
}

// TenantStats is the per-tenant accounting of one queue pair.
type TenantStats struct {
	Tenant string
	Queue  int

	Submitted int64 // commands accepted into the queue
	Completed int64
	Reads     int64 // completed read commands
	Writes    int64 // completed write commands

	// QueueFulls counts submissions refused with ErrQueueFull.
	QueueFulls int64
	// RejectedPages counts pages the degraded device refused.
	RejectedPages int64
	// Grants counts device fetches won in arbitration.
	Grants int64
	// Throttles counts pump passes where this queue held work but was
	// blocked by its token bucket.
	Throttles int64
	// MaxHeadWaitNs is the longest any command waited at the queue head
	// before being fetched — the starvation figure of merit.
	MaxHeadWaitNs int64

	FirstSubmitNs sim.Time
	LastDoneNs    sim.Time

	ReadLat  *metrics.Hist // host-visible read latency (ns)
	WriteLat *metrics.Hist // host-visible write latency (ns)
}

// IOPS returns completed commands per simulated second over the
// tenant's active window (first submit to last completion).
func (t *TenantStats) IOPS() float64 {
	return metrics.IOPS(t.Completed, t.LastDoneNs-t.FirstSubmitNs)
}

type sqe struct {
	cmd    Command
	submit sim.Time
	sp     *telemetry.Span // nil when telemetry is off
}

type queue struct {
	cfg       QueueConfig
	sq        []sqe // waiting commands; sq[head:] is the live window
	head      int
	occupancy int // waiting + dispatched, bounded by cfg.Depth

	// Token bucket (RateIOPS > 0 only).
	tokens     float64
	burst      float64
	lastRefill sim.Time
	wakeArmed  bool
}

func (q *queue) pendingLen() int { return len(q.sq) - q.head }

func (q *queue) push(e sqe) { q.sq = append(q.sq, e) }

func (q *queue) pop() sqe {
	e := q.sq[q.head]
	q.sq[q.head] = sqe{}
	q.head++
	if q.head == len(q.sq) {
		q.sq, q.head = q.sq[:0], 0
	}
	return e
}

func (q *queue) refillTokens(now sim.Time) {
	if q.cfg.RateIOPS <= 0 {
		return
	}
	if dt := now - q.lastRefill; dt > 0 {
		q.tokens = math.Min(q.burst, q.tokens+q.cfg.RateIOPS*float64(dt)/1e9)
		q.lastRefill = now
	}
}

// Host is the multi-queue front end over one FTL controller.
type Host struct {
	eng    *sim.Engine
	ctrl   *ftl.Controller
	arb    Arbiter
	queues []*queue
	stats  []*TenantStats
	width  int

	inflight int // commands dispatched to the device, not yet complete
	pumping  bool
	repump   bool

	// gt maintains the FNV-1a replay hash and the bounded grant ring;
	// when the controller carries a telemetry hub, grants also land in
	// the shared trace event stream.
	gt  *telemetry.GrantTrace
	hub *telemetry.Hub // nil when telemetry is off

	dieAffinity bool
	scratch     []QueueState // reused eligible-set buffer
	affinity    []QueueState // reused die-affinity subset buffer
}

// New wires a host front end over the controller. The controller's
// engine drives all queue and completion events.
func New(ctrl *ftl.Controller, cfg Config) (*Host, error) {
	if len(cfg.Queues) == 0 {
		return nil, ErrNoQueues
	}
	arb := cfg.Arb
	if arb == nil {
		arb = NewRoundRobin()
	}
	h := &Host{
		eng:         ctrl.Engine(),
		ctrl:        ctrl,
		arb:         arb,
		hub:         ctrl.TelemetryHub(),
		dieAffinity: cfg.DieAffinity,
	}
	if h.hub != nil {
		h.gt = h.hub.NewGrantTrace(cfg.TraceCap)
		h.hub.SetTenantSource(h)
	} else {
		h.gt = telemetry.NewGrantTrace(cfg.TraceCap)
	}
	sumDepth := 0
	for i, qc := range cfg.Queues {
		if qc.Tenant == "" {
			qc.Tenant = fmt.Sprintf("q%d", i)
		}
		if qc.Depth <= 0 {
			qc.Depth = 32
		}
		if qc.Weight < 1 {
			qc.Weight = 1
		}
		if qc.BurstIOs <= 0 {
			qc.BurstIOs = qc.Depth
		}
		sumDepth += qc.Depth
		q := &queue{cfg: qc}
		if qc.RateIOPS > 0 {
			q.burst = float64(qc.BurstIOs)
			q.tokens = q.burst // start full: an idle tenant may burst
		}
		h.queues = append(h.queues, q)
		h.stats = append(h.stats, &TenantStats{
			Tenant:   qc.Tenant,
			Queue:    i,
			ReadLat:  metrics.NewHist(0),
			WriteLat: metrics.NewHist(0),
		})
	}
	h.width = cfg.DispatchWidth
	if h.width <= 0 {
		h.width = sumDepth
	}
	return h, nil
}

// Arbiter returns the active arbitration policy.
func (h *Host) Arbiter() Arbiter { return h.arb }

// Queues returns the number of queue pairs.
func (h *Host) Queues() int { return len(h.queues) }

// Controller returns the FTL datapath behind the host interface.
func (h *Host) Controller() *ftl.Controller { return h.ctrl }

// Stats returns queue q's live tenant accounting (updated in place).
func (h *Host) Stats(q int) *TenantStats { return h.stats[q] }

// StatsAll returns every queue's accounting in queue order.
func (h *Host) StatsAll() []*TenantStats { return h.stats }

// Grants returns the total arbitration grants issued.
func (h *Host) Grants() int64 { return h.gt.Grants() }

// TraceHash returns the FNV-1a hash over the full grant sequence —
// equal hashes mean bit-identical arbitration decisions.
func (h *Host) TraceHash() uint64 { return h.gt.Hash() }

// Trace returns the most recent granted queue indices (TraceCap > 0).
func (h *Host) Trace() []int { return h.gt.Recent() }

// Outstanding returns commands submitted but not yet completed, across
// all queues.
func (h *Host) Outstanding() int {
	n := 0
	for _, q := range h.queues {
		n += q.occupancy
	}
	return n
}

// SetWeight changes queue qid's WRR weight online (clamped to >= 1).
// The next arbitration decision sees the new weight — this is the knob
// an SLO controller turns to re-divide device bandwidth between live
// tenants without draining or rebuilding the host.
func (h *Host) SetWeight(qid, weight int) error {
	if qid < 0 || qid >= len(h.queues) {
		return fmt.Errorf("%w: %d (have %d)", ErrBadQueue, qid, len(h.queues))
	}
	if weight < 1 {
		weight = 1
	}
	h.queues[qid].cfg.Weight = weight
	return nil
}

// SetRate changes queue qid's token-bucket IOPS cap online (0 removes
// the cap). Enabling a cap starts the bucket full so the change
// throttles the future rate without retroactively debiting past I/O.
func (h *Host) SetRate(qid int, iops float64) error {
	if qid < 0 || qid >= len(h.queues) {
		return fmt.Errorf("%w: %d (have %d)", ErrBadQueue, qid, len(h.queues))
	}
	q := h.queues[qid]
	if iops == q.cfg.RateIOPS {
		return nil
	}
	q.cfg.RateIOPS = iops
	if iops > 0 {
		q.burst = float64(q.cfg.BurstIOs)
		q.tokens = q.burst
		q.lastRefill = h.eng.Now()
	}
	// A removed or loosened cap may unblock the queue immediately.
	h.pump()
	return nil
}

// Weight returns queue qid's current WRR weight.
func (h *Host) Weight(qid int) int { return h.queues[qid].cfg.Weight }

// Rate returns queue qid's current IOPS cap (0 = uncapped).
func (h *Host) Rate(qid int) float64 { return h.queues[qid].cfg.RateIOPS }

// Submit accepts a command into queue q, or rejects it with
// ErrQueueFull (the queue is at depth) / ErrBadQueue. Completion is
// delivered through cmd.Done in simulated time; advance the engine
// (e.g. Drain) to make progress.
func (h *Host) Submit(qid int, cmd Command) error {
	if qid < 0 || qid >= len(h.queues) {
		return fmt.Errorf("%w: %d (have %d)", ErrBadQueue, qid, len(h.queues))
	}
	q, st := h.queues[qid], h.stats[qid]
	if q.occupancy >= q.cfg.Depth {
		st.QueueFulls++
		return fmt.Errorf("%w: %s (depth %d)", ErrQueueFull, q.cfg.Tenant, q.cfg.Depth)
	}
	now := h.eng.Now()
	if st.Submitted == 0 {
		st.FirstSubmitNs = now
	}
	st.Submitted++
	q.occupancy++
	e := sqe{cmd: cmd, submit: now}
	if h.hub != nil {
		pages := cmd.Pages
		if pages < 1 {
			pages = 1
		}
		e.sp = h.hub.BeginSpan(q.cfg.Tenant, qid, cmd.Op.String(), cmd.LPN, pages)
	}
	q.push(e)
	h.pump()
	return nil
}

// Drain advances the simulation until every submitted command has
// completed and the controller has quiesced.
func (h *Host) Drain() {
	h.eng.RunWhile(func() bool { return h.Outstanding() > 0 })
	h.eng.RunWhile(func() bool { return !h.ctrl.Drained() })
}

// DrainTo advances the simulation only until at most target commands
// remain outstanding. A live server uses it to keep a standing backlog
// while traffic is still arriving — so tenants genuinely contend for
// arbitration grants — and falls back to Drain once the source goes
// quiet.
func (h *Host) DrainTo(target int) {
	if target < 0 {
		target = 0
	}
	h.eng.RunWhile(func() bool { return h.Outstanding() > target })
}

// pump runs the dispatch loop, flattening reentrant calls (a command
// can complete synchronously when a degraded device rejects its
// writes) into repeat passes.
func (h *Host) pump() {
	if h.pumping {
		h.repump = true
		return
	}
	h.pumping = true
	for {
		h.repump = false
		h.dispatch()
		if !h.repump {
			break
		}
	}
	h.pumping = false
}

// dispatch fetches commands through the arbiter while device slots and
// eligible queues remain.
func (h *Host) dispatch() {
	for h.inflight < h.width {
		now := h.eng.Now()
		el := h.scratch[:0]
		for i, q := range h.queues {
			if q.pendingLen() == 0 {
				continue
			}
			q.refillTokens(now)
			if q.cfg.RateIOPS > 0 && q.tokens < 1 {
				h.armWake(i, now)
				continue
			}
			el = append(el, QueueState{
				Index:      i,
				Weight:     q.cfg.Weight,
				Priority:   q.cfg.Priority,
				Pending:    q.pendingLen(),
				HeadWaitNs: now - q.sq[q.head].submit,
			})
		}
		h.scratch = el[:0]
		if len(el) == 0 {
			return
		}
		if h.dieAffinity && len(el) > 1 {
			aff := h.affinity[:0]
			for _, qs := range el {
				if h.headDieIdle(qs.Index) {
					aff = append(aff, qs)
				}
			}
			h.affinity = aff[:0]
			if n := len(aff); n > 0 && n < len(el) {
				el = aff
			}
		}
		idx := h.arb.Pick(el, now)
		h.grant(idx, now)
	}
}

// headDieIdle reports whether a queue's head command could start on
// NAND immediately: writes and buffered/unmapped reads are
// die-flexible (the FTL places them), and a mapped read qualifies when
// its die has nothing queued or running.
func (h *Host) headDieIdle(qid int) bool {
	q := h.queues[qid]
	cmd := q.sq[q.head].cmd
	if cmd.Op != Read {
		return true
	}
	die := h.ctrl.TargetDie(ftl.LPN(cmd.LPN))
	return die < 0 || !h.ctrl.DieBusy(die)
}

// grant fetches the head command of queue idx and issues it.
func (h *Host) grant(idx int, now sim.Time) {
	q, st := h.queues[idx], h.stats[idx]
	e := q.pop()
	if q.cfg.RateIOPS > 0 {
		q.tokens--
	}
	st.Grants++
	if wait := now - e.submit; wait > st.MaxHeadWaitNs {
		st.MaxHeadWaitNs = wait
	}
	h.gt.Grant(idx)
	if e.sp != nil {
		h.hub.GrantSpan(e.sp)
	}
	h.inflight++
	h.issue(idx, e)
}

// issue drives one command's pages through the controller.
func (h *Host) issue(qid int, e sqe) {
	st := h.stats[qid]
	pages := e.cmd.Pages
	if pages < 1 {
		pages = 1
	}
	remaining, rejected := pages, 0
	// Of a traced multi-page command, the page completing last is the
	// critical path; its probe supplies the span's device-side stages.
	var lastPP *telemetry.PageProbe
	finish := func(pp *telemetry.PageProbe) {
		remaining--
		if pp != nil {
			lastPP = pp
		}
		if remaining == 0 {
			h.complete(qid, e, rejected, lastPP)
		}
	}
	for p := 0; p < pages; p++ {
		lpn := ftl.LPN(e.cmd.LPN + int64(p))
		var pp *telemetry.PageProbe
		if e.sp != nil {
			pp = &telemetry.PageProbe{Die: -1}
		}
		pageDone := func() { finish(pp) }
		if e.cmd.Op == Read {
			h.ctrl.ReadTraced(lpn, pp, pageDone)
		} else if err := h.ctrl.WriteTraced(lpn, pp, pageDone); err != nil {
			// Degraded (or out-of-range) page: counted and completed
			// immediately, like a media-error status in the CQE.
			rejected++
			st.RejectedPages++
			pageDone()
		}
	}
}

// complete retires one command: per-tenant accounting, queue slot
// release, submitter callback, and a dispatch pass for the freed slot.
func (h *Host) complete(qid int, e sqe, rejectedPages int, pp *telemetry.PageProbe) {
	now := h.eng.Now()
	st := h.stats[qid]
	lat := now - e.submit
	if e.cmd.Op == Read {
		st.ReadLat.Add(lat)
		st.Reads++
	} else {
		st.WriteLat.Add(lat)
		st.Writes++
	}
	st.Completed++
	st.LastDoneNs = now
	h.queues[qid].occupancy--
	h.inflight--
	if e.sp != nil {
		h.hub.CompleteSpan(e.sp, pp, rejectedPages)
	}
	if e.cmd.Done != nil {
		e.cmd.Done(Completion{
			SubmitNs:      e.submit,
			DoneNs:        now,
			LatencyNs:     lat,
			RejectedPages: rejectedPages,
		})
	}
	h.pump()
}

// armWake schedules a dispatch pass for when the queue's token bucket
// refills enough to fetch its head command.
func (h *Host) armWake(qid int, now sim.Time) {
	q := h.queues[qid]
	if q.wakeArmed {
		return
	}
	wait := sim.Time(math.Ceil((1 - q.tokens) / q.cfg.RateIOPS * 1e9))
	if wait < 1 {
		wait = 1
	}
	q.wakeArmed = true
	h.stats[qid].Throttles++
	h.eng.After(wait, func() {
		q.wakeArmed = false
		h.pump()
	})
}

// TenantSamples implements telemetry.TenantSource: a point-in-time
// snapshot of each queue pair for the time-series sampler.
func (h *Host) TenantSamples() []telemetry.TenantSample {
	out := make([]telemetry.TenantSample, len(h.queues))
	for i, q := range h.queues {
		st := h.stats[i]
		out[i] = telemetry.TenantSample{
			Name:      q.cfg.Tenant,
			Completed: st.Completed,
			IOPS:      st.IOPS(),
			ReadP99:   st.ReadLat.Percentile(99),
			WriteP99:  st.WriteLat.Percentile(99),
			QueueLen:  q.pendingLen(),
			Grants:    st.Grants,
			Throttles: st.Throttles,
		}
	}
	return out
}
