// YCSB-A over an LSM store (the paper's "Rocks" workload) across the
// drive's lifetime: fresh, mid-life, and end-of-life. At end of life
// 90% of reads need retries at the default reference voltages, and
// cubeFTL's per-h-layer ORT reuse is what keeps the drive usable.
package main

import (
	"fmt"
	"log"

	"cubeftl"
)

func main() {
	agings := []struct {
		label     string
		pe        int
		retention float64
	}{
		{"fresh (0K P/E)", 0, 0},
		{"2K P/E + 1 month", 2000, 1},
		{"2K P/E + 1 year", 2000, 12},
	}
	const requests = 8000

	for _, ag := range agings {
		fmt.Printf("== Rocks (YCSB-A), %s ==\n", ag.label)
		fmt.Printf("%-9s %10s %12s %12s %14s\n", "FTL", "IOPS", "read p50", "read p99", "read retries")
		var base float64
		for _, f := range []string{cubeftl.FTLPage, cubeftl.FTLCube} {
			dev, err := cubeftl.New(cubeftl.Options{
				FTL:             f,
				BlocksPerChip:   32,
				Seed:            11,
				PECycles:        ag.pe,
				RetentionMonths: ag.retention,
			})
			if err != nil {
				log.Fatal(err)
			}
			dev.Prefill(int64(dev.LogicalPages()) * 6 / 10)
			dev.ResetStats()
			st, err := dev.RunWorkload("Rocks", requests, 24)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-9s %10.0f %12v %12v %14d\n",
				dev.FTLName(), st.IOPS, st.ReadP50, st.ReadP99, st.ReadRetries)
			if f == cubeftl.FTLPage {
				base = st.IOPS
			} else if base > 0 {
				fmt.Printf("          -> cubeFTL: %+.0f%% IOPS vs pageFTL\n", 100*(st.IOPS/base-1))
			}
		}
		fmt.Println()
	}
}
