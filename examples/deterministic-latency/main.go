// Deterministic latency: the paper's §8 future-work direction. The
// process-similarity machinery makes read response times predictable
// (the ORT knows each h-layer's reference voltages up front); stacking
// program/erase suspend-resume on top removes the write-blocking tail.
// This example measures the read-latency distribution of an end-of-life
// device under four configurations.
package main

import (
	"fmt"
	"log"

	"cubeftl"
)

func main() {
	fmt.Println("Rocks (YCSB-A) at end of life (2K P/E + 1 year): read latency")
	fmt.Printf("%-22s %10s %12s %12s %12s\n", "configuration", "IOPS", "read p50", "read p99", "retries")
	for _, cfg := range []struct {
		label   string
		ftl     string
		suspend bool
	}{
		{"pageFTL", cubeftl.FTLPage, false},
		{"pageFTL + suspend", cubeftl.FTLPage, true},
		{"cubeFTL", cubeftl.FTLCube, false},
		{"cubeFTL + suspend", cubeftl.FTLCube, true},
	} {
		dev, err := cubeftl.New(cubeftl.Options{
			FTL:             cfg.ftl,
			BlocksPerChip:   32,
			Seed:            3,
			PECycles:        2000,
			RetentionMonths: 12,
			SuspendOps:      cfg.suspend,
		})
		if err != nil {
			log.Fatal(err)
		}
		dev.Prefill(int64(dev.LogicalPages()) * 6 / 10)
		dev.ResetStats()
		st, err := dev.RunWorkload("Rocks", 8000, 24)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %10.0f %12v %12v %12d\n",
			cfg.label, st.IOPS, st.ReadP50, st.ReadP99, st.ReadRetries)
	}
	fmt.Println("\nThe ORT removes the retry tail; suspend-resume removes the")
	fmt.Println("write-blocking tail. Together the median drops ~2.5x and the")
	fmt.Println("distribution narrows — the paper's deterministic-latency thesis.")
}
