// Trace record and replay: capture a workload's request stream to a
// plain-text trace, then replay it bit-for-bit against two different
// FTLs — the apples-to-apples comparison methodology real storage teams
// use with blktrace captures.
package main

import (
	"bytes"
	"fmt"
	"log"

	"cubeftl"
)

func main() {
	// Record 6000 Mongo (YCSB-A) requests sized for a small device.
	probe, err := cubeftl.New(cubeftl.Options{FTL: cubeftl.FTLPage, BlocksPerChip: 32, Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	var trace bytes.Buffer
	if err := cubeftl.RecordTrace(&trace, "Mongo", probe.LogicalPages(), 6000, 9); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded trace: %d bytes, format \"<r|w> <lpn> <pages> [think_ns]\"\n\n", trace.Len())

	fmt.Printf("%-9s %10s %12s %12s %12s\n", "FTL", "IOPS", "write p50", "write p90", "mean tPROG")
	for _, f := range []string{cubeftl.FTLPage, cubeftl.FTLCube} {
		dev, err := cubeftl.New(cubeftl.Options{FTL: f, BlocksPerChip: 32, Seed: 9})
		if err != nil {
			log.Fatal(err)
		}
		dev.Prefill(int64(dev.LogicalPages()) * 6 / 10)
		dev.ResetStats()
		st, err := dev.RunTrace(bytes.NewReader(trace.Bytes()), "mongo-capture", 6000, 24)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s %10.0f %12v %12v %12v\n", dev.FTLName(), st.IOPS, st.WriteP50, st.WriteP90, st.MeanTPROG)
	}
	fmt.Println("\nBoth devices saw the identical request sequence; every")
	fmt.Println("difference above is the FTL.")
}
