// Multi-tenant noisy-neighbor demo: a latency-sensitive point-read
// tenant ("hot", YCSB-C) shares one SSD with a saturating sequential
// bulk writer ("bulk"). Both are driven through the NVMe-style
// multi-queue host interface over a narrow device dispatch window, so
// the arbiter decides whose commands reach the flash first.
//
// Plain round-robin splits grants evenly and the reader's tail latency
// inherits the writer's queueing; weighted round-robin (8:1 for the
// reader) isolates it, and adding a token-bucket rate cap on the bulk
// writer tightens the tail further. Runs are deterministic: the same
// seed reproduces every latency and the arbitration trace hash.
package main

import (
	"fmt"
	"log"

	"cubeftl"
)

func main() {
	const (
		seed     = 7
		blocks   = 32
		hotReqs  = 3000
		bulkReqs = 5000
		width    = 6 // narrow shared dispatch window: the contended resource
	)
	tenants := func(hotWeight int, bulkRate float64) []cubeftl.TenantConfig {
		return []cubeftl.TenantConfig{
			{Name: "hot", Workload: "YCSB-C", Requests: hotReqs, QueueDepth: 4, Weight: hotWeight},
			{Name: "bulk", Workload: "Bulk", Requests: bulkReqs, QueueDepth: 32, Weight: 1, RateIOPS: bulkRate},
		}
	}
	run := func(label, arb string, hotWeight int, bulkRate float64) cubeftl.MultiTenantStats {
		dev, err := cubeftl.New(cubeftl.Options{FTL: cubeftl.FTLCube, BlocksPerChip: blocks, Seed: seed})
		if err != nil {
			log.Fatal(err)
		}
		dev.Prefill(int64(dev.LogicalPages()) * 6 / 10)
		dev.ResetStats()
		st, err := dev.RunTenants(tenants(hotWeight, bulkRate), arb, width)
		if err != nil {
			log.Fatal(err)
		}
		hot, bulk := st.Tenants[0], st.Tenants[1]
		fmt.Printf("%-22s %10v %10v %12v %10.0f %10.0f   %016x\n",
			label, hot.ReadP50, hot.ReadP99, hot.ReadP999, hot.IOPS, bulk.IOPS, st.TraceHash)
		return st
	}

	fmt.Println("noisy neighbor: 'hot' point reader (QD4) vs saturating 'bulk' writer (QD32)")
	fmt.Printf("shared dispatch width %d, seed %d — rerun for bit-identical numbers\n\n", width, seed)
	fmt.Printf("%-22s %10s %10s %12s %10s %10s   %s\n",
		"scenario", "hot p50", "hot p99", "hot p99.9", "hot IOPS", "bulk IOPS", "trace hash")
	rr := run("round-robin", cubeftl.ArbRR, 1, 0)
	wrr := run("WRR 8:1", cubeftl.ArbWRR, 8, 0)
	capped := run("WRR 8:1 + bulk cap", cubeftl.ArbWRR, 8, 4000)

	rrP99 := rr.Tenants[0].ReadP99
	wrrP99 := wrr.Tenants[0].ReadP99
	fmt.Printf("\nWRR cuts the hot tenant's p99 read latency from %v to %v (%.1fx)\n",
		rrP99, wrrP99, float64(rrP99)/float64(wrrP99))
	fmt.Printf("while the bulk writer keeps %.0f%% of its round-robin throughput;\n",
		100*wrr.Tenants[1].IOPS/rr.Tenants[1].IOPS)
	fmt.Printf("the 4k-IOPS cap on bulk (%d throttles) trims the tail to %v.\n",
		capped.Tenants[1].Throttles, capped.Tenants[0].ReadP99)
}
