// Characterization demo: regenerate the paper's §3 process study and
// the §4 optimization characterizations on the simulated chips — the
// figures that establish the horizontal intra-layer similarity the
// whole design rests on.
package main

import (
	"log"
	"os"

	"cubeftl"
)

func main() {
	// Fig 5: word lines on the same h-layer are virtually equivalent.
	// Fig 6: h-layers differ strongly and age nonlinearly.
	// Fig 8: verify-skip budgets per program state.
	// Fig 14: read-retry distributions, PS-aware vs PS-unaware.
	for _, id := range []string{"fig5", "fig6", "fig8", "fig14"} {
		if err := cubeftl.ReproduceFigure(id, 1, os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}
