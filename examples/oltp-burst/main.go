// OLTP burst demo: the scenario the paper's intro motivates — an
// update-heavy database whose write bursts saturate the flash program
// path. Runs the OLTP workload under all four FTLs on identical
// devices and compares throughput and write tails, showing the WAM's
// adaptive leader/follower allocation absorbing the bursts.
package main

import (
	"fmt"
	"log"

	"cubeftl"
)

func main() {
	const (
		requests = 12000
		qd       = 24
		blocks   = 32
	)
	fmt.Println("OLTP (write-intensive, bursty) on four FTLs, fresh device")
	fmt.Printf("%-9s %10s %12s %12s %12s %14s\n",
		"FTL", "IOPS", "write p50", "write p90", "mean tPROG", "followers")
	for _, f := range []string{cubeftl.FTLPage, cubeftl.FTLVert, cubeftl.FTLCubeMinus, cubeftl.FTLCube} {
		dev, err := cubeftl.New(cubeftl.Options{FTL: f, BlocksPerChip: blocks, Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		dev.Prefill(int64(dev.LogicalPages()) * 6 / 10)
		dev.ResetStats()
		st, err := dev.RunWorkload("OLTP", requests, qd)
		if err != nil {
			log.Fatal(err)
		}
		cs := dev.Cube()
		followers := "-"
		if cs.FollowerPrograms > 0 {
			followers = fmt.Sprintf("%.0f%%", 100*float64(cs.FollowerPrograms)/
				float64(cs.FollowerPrograms+cs.LeaderPrograms))
		}
		fmt.Printf("%-9s %10.0f %12v %12v %12v %14s\n",
			dev.FTLName(), st.IOPS, st.WriteP50, st.WriteP90, st.MeanTPROG, followers)
	}
	fmt.Println("\ncubeFTL serves burst writes from fast follower word lines")
	fmt.Println("(leaders are spent while the write buffer is calm), so its")
	fmt.Println("mean tPROG and write tail drop well below the baselines.")
}
