// Quickstart: build a small simulated SSD with the PS-aware cubeFTL,
// write and read a few pages, and show how follower word lines are
// programmed faster than leaders thanks to the horizontal process
// similarity.
package main

import (
	"fmt"
	"log"

	"cubeftl"
)

func main() {
	dev, err := cubeftl.New(cubeftl.Options{
		FTL:           cubeftl.FTLCube,
		BlocksPerChip: 24, // small device for a fast demo
		Seed:          42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built %s SSD: %.1f GiB logical (%d pages)\n",
		dev.FTLName(), float64(dev.CapacityBytes())/(1<<30), dev.LogicalPages())

	// Write 3000 pages, then read some of them back.
	for lpn := int64(0); lpn < 3000; lpn++ {
		if err := dev.Write(lpn, nil); err != nil {
			log.Fatal(err)
		}
	}
	dev.Run()
	fmt.Printf("3000 pages written by t=%v (simulated)\n", dev.Now())

	reads := 0
	for lpn := int64(0); lpn < 3000; lpn += 100 {
		if err := dev.Read(lpn, func() { reads++ }); err != nil {
			log.Fatal(err)
		}
	}
	dev.Run()
	fmt.Printf("%d reads completed by t=%v\n", reads, dev.Now())

	// The OPM monitored every h-layer's leading word line and reused the
	// measurements for the followers on the same layer.
	cs := dev.Cube()
	fmt.Printf("\nPS-aware programming:\n")
	fmt.Printf("  leader word lines (default parameters):  %d\n", cs.LeaderPrograms)
	fmt.Printf("  follower word lines (skips + margins):   %d\n", cs.FollowerPrograms)
	fmt.Printf("  ORT footprint: %d bytes for the whole device\n", cs.ORTBytes)
}
