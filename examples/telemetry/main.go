// Telemetry: run a Mixed workload with the full observability layer —
// per-IO spans exported as a Chrome trace, periodic JSONL stats
// snapshots, and per-stage latency attribution — then peek at the
// metrics registry directly.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"cubeftl"
)

func main() {
	dev, err := cubeftl.New(cubeftl.Options{
		FTL:           cubeftl.FTLCube,
		BlocksPerChip: 24,
		Seed:          7,
	})
	if err != nil {
		log.Fatal(err)
	}
	dev.Prefill(int64(dev.LogicalPages()) * 6 / 10)
	dev.ResetStats()

	// Telemetry is off by default and costs nothing until enabled.
	dev.EnableTelemetry(cubeftl.TelemetryConfig{Trace: true})

	stats, err := os.Create("telemetry-stats.jsonl")
	if err != nil {
		log.Fatal(err)
	}
	defer stats.Close()
	// One snapshot per 1ms of *simulated* time: per-die utilization and
	// queue depth, per-tenant IOPS and p99, and every registry metric.
	if err := dev.StartStats(stats, time.Millisecond); err != nil {
		log.Fatal(err)
	}

	rs, err := dev.RunWorkload("Mixed", 6000, 16)
	if err != nil {
		log.Fatal(err)
	}
	if err := dev.CloseStats(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Mixed: %d requests, %.0f IOPS, read p99 %v\n",
		rs.Requests, rs.IOPS, rs.ReadP99)

	// Export the retained spans and device events as a Chrome
	// trace_event file; drop it into https://ui.perfetto.dev to see the
	// host queues, FTL, and per-die NAND tracks on the simulated
	// timeline.
	trace, err := os.Create("telemetry-trace.json")
	if err != nil {
		log.Fatal(err)
	}
	defer trace.Close()
	if err := dev.WriteChromeTrace(trace); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote telemetry-trace.json and telemetry-stats.jsonl")

	// Where did the latency go? Components of every quoted percentile
	// sum exactly to that sample's end-to-end latency.
	fmt.Println()
	fmt.Println(dev.BreakdownTable())

	// The registry is also queryable in-process.
	snap := dev.Telemetry().Registry().Snapshot()
	fmt.Printf("registry: %d counters, %d gauges, %d histograms\n",
		len(snap.Counters), len(snap.Gauges), len(snap.Hists))
	fmt.Printf("  ftl/requeue/fenced = %d\n", snap.Counters["ftl/requeue/fenced"])
	fmt.Printf("  ftl/write_amp      = %.3f\n", snap.Gauges["ftl/write_amp"])
	if h, ok := snap.Hists["ftl/read_ns"]; ok {
		fmt.Printf("  ftl/read_ns        = n=%d p99=%dns\n", h.N, h.P99)
	}
}
