package cubeftl

import (
	"errors"
	"os"
	"strings"
	"testing"
)

const msrFixture = "internal/workload/testdata/msr_sample.csv"

func openFixture(t *testing.T) *os.File {
	t.Helper()
	f, err := os.Open(msrFixture)
	if err != nil {
		t.Fatalf("open fixture: %v", err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func TestReplayTraceFacade(t *testing.T) {
	dev, err := New(Options{FTL: FTLCube, BlocksPerChip: 8, Channels: 1, DiesPerChannel: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	st, err := dev.ReplayTrace("msr_sample", openFixture(t), TraceReplayOptions{TimeCompression: 20})
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != 1200 {
		t.Errorf("replayed %d of 1200 fixture records", st.Requests)
	}
	if st.ReadP50 <= 0 || st.Elapsed <= 0 || st.IOPS <= 0 {
		t.Errorf("degenerate stats: %+v", st)
	}
}

func TestReplayTraceBadInput(t *testing.T) {
	dev, err := New(Options{BlocksPerChip: 8, Channels: 1, DiesPerChannel: 2})
	if err != nil {
		t.Fatal(err)
	}
	_, err = dev.ReplayTrace("empty", strings.NewReader(""), TraceReplayOptions{})
	if !errors.Is(err, ErrTraceEmpty) {
		t.Errorf("empty trace: got %v", err)
	}
	_, err = dev.ReplayTrace("garbage", strings.NewReader("not,a,real\ntrace,at,all\n"), TraceReplayOptions{})
	if err == nil {
		t.Error("garbage trace accepted")
	}
}

func TestRunFleetFacadeDeterminism(t *testing.T) {
	opts := FleetOptions{
		Shards:         8,
		Tenants:        1024,
		Seed:           1,
		BlocksPerChip:  8,
		Channels:       1,
		DiesPerChannel: 2,
		CachePages:     1024,
		CachePolicy:    Cache2Q,
		CacheMode:      "back",
	}
	topt := TraceReplayOptions{TimeCompression: 20}
	a, err := RunFleet(opts, "msr_sample", openFixture(t), topt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFleet(opts, "msr_sample", openFixture(t), topt)
	if err != nil {
		t.Fatal(err)
	}
	if a.Report != b.Report {
		t.Errorf("same seed diverged:\n--- a ---\n%s--- b ---\n%s", a.Report, b.Report)
	}
	if a.TraceHash != b.TraceHash {
		t.Errorf("trace hash diverged: %016x vs %016x", a.TraceHash, b.TraceHash)
	}
	if a.Requests != 1200 {
		t.Errorf("fleet completed %d of 1200", a.Requests)
	}
	if len(a.Shards) != 8 {
		t.Fatalf("got %d shards, want 8", len(a.Shards))
	}
	tenants := 0
	for _, s := range a.Shards {
		tenants += s.Tenants
	}
	if tenants == 0 {
		t.Error("no tenants materialized")
	}
	// Wall time is the one field allowed to differ between runs; make
	// sure it is populated but never leaks into the report.
	if a.Wall <= 0 {
		t.Error("wall time not measured")
	}
	if strings.Contains(a.Report, "wall") {
		t.Error("wall clock leaked into the deterministic report")
	}
}

func TestRunFleetFacadeErrors(t *testing.T) {
	topt := TraceReplayOptions{}
	if _, err := RunFleet(FleetOptions{}, "empty", strings.NewReader(""), topt); !errors.Is(err, ErrTraceEmpty) {
		t.Errorf("empty trace: got %v", err)
	}
	if _, err := RunFleet(FleetOptions{CacheMode: "sideways"}, "msr", openFixture(t), topt); err == nil {
		t.Error("bad cache mode accepted")
	}
	if _, err := RunFleet(FleetOptions{FTL: FTLCubeMinus}, "msr", openFixture(t), topt); err == nil {
		t.Error("unsupported fleet FTL accepted")
	}
}
