package cubeftl

// Persistent multi-queue front end (DESIGN.md §13). RunTenants builds a
// host interface, drives it with synthetic generators, and tears it
// down; a live block server instead needs queue pairs that outlive any
// one request stream, accept externally-generated I/O, and expose the
// QoS knobs online. AttachFrontEnd provides exactly that: the same
// NVMe-style SQ/CQ host layer, owned by the caller.

import (
	"fmt"
	"time"

	"cubeftl/internal/ftl"
	"cubeftl/internal/host"
	"cubeftl/internal/ssd"
)

// QueueSpec describes one tenant queue pair of a persistent front end.
type QueueSpec struct {
	// Name labels the tenant (defaults to "q<index>").
	Name string
	// Depth bounds outstanding commands; submissions beyond it fail
	// with ErrQueueFull (default 32).
	Depth int
	// Weight is the WRR share (>= 1; "wrr" arbiter).
	Weight int
	// Priority is the strict-priority class ("prio" arbiter).
	Priority int
	// RateIOPS token-bucket rate limits the tenant; 0 = unlimited.
	RateIOPS float64
}

// IOCompletion reports one finished front-end command.
type IOCompletion struct {
	// Latency is the host-visible latency: submission-queue wait plus
	// device service, in simulated time.
	Latency time.Duration
	// RejectedPages counts pages a degraded (read-only) device refused;
	// they complete immediately without touching media.
	RejectedPages int
}

// TenantSnapshot is a point-in-time view of one tenant queue, for SLO
// controllers and operator dashboards. Percentiles are cumulative over
// the front end's lifetime; latency-window tracking belongs to the
// consumer (see internal/server's SLO controller).
type TenantSnapshot struct {
	Name       string
	Queue      int
	Submitted  int64
	Completed  int64
	QueueFulls int64
	Grants     int64
	Throttles  int64
	QueueLen   int
	ReadP99    time.Duration
	WriteP99   time.Duration
	Weight     int
	RateIOPS   float64
}

// FrontEnd is a persistent NVMe-style multi-queue host interface over
// the SSD. Like the SSD itself it is single-threaded: all calls must
// come from the goroutine that owns the simulation. A FrontEnd does not
// survive Remount — attach a fresh one after recovery.
type FrontEnd struct {
	s *SSD
	h *host.Host
}

// AttachFrontEnd builds a persistent multi-queue front end over the
// device with one SQ/CQ pair per spec, arbitrated by arb (ArbRR,
// ArbWRR, ArbPrio). dispatchWidth bounds commands concurrently
// outstanding at the device across all queues (0 = sum of depths).
func (s *SSD) AttachFrontEnd(queues []QueueSpec, arb string, dispatchWidth int) (*FrontEnd, error) {
	if len(queues) == 0 {
		return nil, host.ErrNoQueues
	}
	arbiter, err := host.NewArbiter(arb, int64(DefaultStarvationGuard))
	if err != nil {
		return nil, err
	}
	qcs := make([]host.QueueConfig, len(queues))
	for i, q := range queues {
		qcs[i] = host.QueueConfig{
			Tenant:   q.Name,
			Depth:    q.Depth,
			Weight:   q.Weight,
			Priority: q.Priority,
			RateIOPS: q.RateIOPS,
		}
	}
	h, err := host.New(s.ctrl, host.Config{
		Queues:        qcs,
		Arb:           arbiter,
		DispatchWidth: dispatchWidth,
		DieAffinity:   s.dieAffinity,
	})
	if err != nil {
		return nil, err
	}
	return &FrontEnd{s: s, h: h}, nil
}

// Submit enqueues one command (write=false reads) of pages consecutive
// logical pages starting at lpn into the tenant's queue. done (optional)
// runs in simulated time when the command completes — under
// Options.Recovery a write completes only once its mapping record is
// durable, so done doubles as the durable-ack signal. Errors are
// synchronous admission failures: ErrQueueFull (retryable), ErrBadQueue
// or ErrBadLPN (terminal).
func (f *FrontEnd) Submit(queue int, write bool, lpn int64, pages int, done func(IOCompletion)) error {
	if pages < 1 {
		pages = 1
	}
	if lpn < 0 || lpn+int64(pages) > int64(f.s.ctrl.LogicalPages()) {
		return fmt.Errorf("%w: [%d, %d)", ErrBadLPN, lpn, lpn+int64(pages))
	}
	op := host.Read
	if write {
		op = host.Write
	}
	var cb func(host.Completion)
	if done != nil {
		cb = func(c host.Completion) {
			done(IOCompletion{
				Latency:       time.Duration(c.LatencyNs),
				RejectedPages: c.RejectedPages,
			})
		}
	}
	return f.h.Submit(queue, host.Command{Op: op, LPN: lpn, Pages: pages, Done: cb})
}

// Outstanding returns commands submitted but not yet completed.
func (f *FrontEnd) Outstanding() int { return f.h.Outstanding() }

// Pump advances the simulation until every submitted command has
// completed and the controller has quiesced, delivering completions
// along the way. A live server calls this after each submission batch.
func (f *FrontEnd) Pump() { f.h.Drain() }

// PumpTo advances the simulation only until at most target commands
// remain outstanding, preserving a standing backlog so tenants contend
// for grants. Call Pump (full drain) once traffic stops arriving.
func (f *FrontEnd) PumpTo(target int) { f.h.DrainTo(target) }

// SetWeight changes a tenant's WRR weight online (clamped to >= 1).
func (f *FrontEnd) SetWeight(queue, weight int) error { return f.h.SetWeight(queue, weight) }

// SetRate changes a tenant's IOPS cap online (0 removes the cap).
func (f *FrontEnd) SetRate(queue int, iops float64) error { return f.h.SetRate(queue, iops) }

// Snapshot returns a point-in-time view of every tenant queue.
func (f *FrontEnd) Snapshot() []TenantSnapshot {
	samples := f.h.TenantSamples()
	out := make([]TenantSnapshot, len(samples))
	for i, ts := range samples {
		st := f.h.Stats(i)
		out[i] = TenantSnapshot{
			Name:       ts.Name,
			Queue:      i,
			Submitted:  st.Submitted,
			Completed:  st.Completed,
			QueueFulls: st.QueueFulls,
			Grants:     st.Grants,
			Throttles:  st.Throttles,
			QueueLen:   ts.QueueLen,
			ReadP99:    time.Duration(ts.ReadP99),
			WriteP99:   time.Duration(ts.WriteP99),
			Weight:     f.h.Weight(i),
			RateIOPS:   f.h.Rate(i),
		}
	}
	return out
}

// TraceHash returns the FNV-1a hash over the arbitration grant
// sequence — equal hashes mean bit-identical scheduling.
func (f *FrontEnd) TraceHash() uint64 { return f.h.TraceHash() }

// IsMapped reports whether lpn currently holds a written page — the
// probe behind the block server's StatLPN operation and the soak
// harness's acked-write audit.
func (s *SSD) IsMapped(lpn int64) (bool, error) {
	if lpn < 0 || lpn >= int64(s.ctrl.LogicalPages()) {
		return false, fmt.Errorf("%w: %d", ErrBadLPN, lpn)
	}
	return s.ctrl.Mapper().Lookup(ftl.LPN(lpn)) != ssd.UnmappedPPN, nil
}

// Interrupt asks the simulation to halt at the next event boundary. It
// is the one SSD method safe to call from another goroutine: signal
// handlers use it so Ctrl-C stops a long run in a consistent state that
// Quiesce can then checkpoint. The run-loop call in progress returns
// early; ClearInterrupt (called by Quiesce) re-arms the engine.
func (s *SSD) Interrupt() { s.eng.Interrupt() }

// Interrupted reports whether Interrupt has been called and not yet
// cleared by Quiesce.
func (s *SSD) Interrupted() bool { return s.eng.Interrupted() }

// Quiesce re-arms an interrupted engine, drains all in-flight facade
// I/O and buffered writes, and — with Options.Recovery — flushes the
// journal and writes a final checkpoint, running the simulation until
// the system area is fully durable. After Quiesce a process can exit
// knowing the next Mount starts from a zero-age checkpoint. Front-end
// commands are not drained here; call FrontEnd.Pump first.
func (s *SSD) Quiesce() {
	s.eng.ClearInterrupt()
	s.eng.RunWhile(func() bool { return s.outstanding > 0 || !s.ctrl.Drained() })
	if s.mgr != nil {
		s.mgr.CheckpointNow()
		s.eng.RunWhile(func() bool { return !s.mgr.Quiesced() })
	}
}
