package cubeftl

// Crash-consistency facade (DESIGN.md §12): power-cut injection and
// the recovery mount. Enable with Options.Recovery; the flash array
// and the checkpointed system area survive PowerCut, everything else
// (engine, controller, buffered writes, in-flight programs) is lost,
// and Remount rebuilds the device from the durable state alone.

import (
	"errors"
	"fmt"
	"time"

	"cubeftl/internal/host"
	"cubeftl/internal/recovery"
	"cubeftl/internal/sim"
	"cubeftl/internal/ssd"
	"cubeftl/internal/workload"
)

// ErrRecoveryOff reports a recovery API called on an SSD built without
// Options.Recovery.
var ErrRecoveryOff = errors.New("cubeftl: recovery not enabled (set Options.Recovery)")

// RecoveryEnabled reports whether the SSD runs the crash-consistency
// subsystem.
func (s *SSD) RecoveryEnabled() bool { return s.mgr != nil }

// CheckpointNow requests an immediate checkpoint (it still takes
// simulated time to write; a power cut during the write leaves the
// previous checkpoint slot intact).
func (s *SSD) CheckpointNow() error {
	if s.mgr == nil {
		return ErrRecoveryOff
	}
	s.mgr.CheckpointNow()
	return nil
}

// AckedWrites returns how many distinct logical pages currently hold a
// durably-acknowledged write — the set Remount's verifier audits.
func (s *SSD) AckedWrites() int {
	if s.mgr == nil || s.mgr.Ledger() == nil {
		return 0
	}
	return s.mgr.Ledger().Writes()
}

// PowerCut kills the device at the current simulated instant: buffered
// writes that never reached flash are dropped, in-flight word-line
// programs are torn mid-ISPP, an in-flight erase leaves the block
// half-erased, and only a prefix of the un-flushed journal reaches the
// system area. The SSD rejects further I/O until Remount.
func (s *SSD) PowerCut() error {
	if s.mgr == nil {
		return ErrRecoveryOff
	}
	s.mgr.PowerCut()
	return nil
}

// MountReport summarizes one recovery mount (facade view of the
// internal report; see DESIGN.md §12 for the mount state machine).
type MountReport struct {
	// MountTime is the modeled mount latency: checkpoint read, journal
	// replay, free-pool probes, OOB scans, and evacuation I/O.
	MountTime time.Duration
	// UsedCheckpoint is false for a full-scan mount.
	UsedCheckpoint bool
	// CheckpointAge is how stale the newest checkpoint was when power
	// died (0 on full scan).
	CheckpointAge time.Duration

	JournalRecords int  // valid journal records replayed
	JournalTorn    bool // the journal tail failed framing/CRC

	BlocksProbed      int // free-pool probes (one word-line read each)
	DiscoveredBlocks  int // blocks found programmed that durable state called free
	OOBPagesScanned   int // spare-area records read during roll-forward
	MappingsRecovered int // live L2P entries after the mount
	RollForwardWins   int // mappings recovered from OOB past the durable state
	EvacuationsQueued int // retired-with-live blocks evacuated at mount

	// Verified is true when the full-device verifier ran and passed:
	// internal consistency, L2P <-> OOB agreement, payload integrity
	// (with Options.VerifyData), and zero lost acked writes.
	Verified bool
}

// Remount rebuilds the SSD after a power cut: a fresh controller mounts
// from the newest valid checkpoint, replays the journal, roll-forward
// scans open blocks' spare areas, and re-arms the write points.
// fullScan ignores the checkpoint and journal and rebuilds from OOB
// metadata alone (the worst-case mount). verify then runs the
// full-device consistency audit — including that every write
// acknowledged to the host before the cut is still readable — and
// fails the remount if any check trips. Telemetry does not survive a
// remount; re-enable it afterwards if needed.
func (s *SSD) Remount(verify, fullScan bool) (MountReport, error) {
	if s.mgr == nil {
		return MountReport{}, ErrRecoveryOff
	}
	eng := sim.NewEngine()
	// The NAND array is the durable medium: data, OOB, wear, grown bad
	// blocks, and fault-injection streams all live there and carry over.
	dev := ssd.NewWithArray(eng, s.dev.Config(), s.dev.Array())
	pol, cube, err := newPolicy(s.opts, dev)
	if err != nil {
		return MountReport{}, err
	}
	ctrl, rpt, err := recovery.Mount(dev, pol, s.ctrlCfg, s.mgr.System(), recovery.MountOptions{
		ForceFullScan: fullScan,
	})
	if err != nil {
		return MountReport{}, fmt.Errorf("cubeftl: recovery mount: %w", err)
	}
	out := MountReport{
		MountTime:         time.Duration(rpt.MountNs),
		UsedCheckpoint:    rpt.UsedCheckpoint,
		CheckpointAge:     time.Duration(rpt.CheckpointAgeNs),
		JournalRecords:    rpt.JournalRecords,
		JournalTorn:       rpt.JournalTorn,
		BlocksProbed:      rpt.BlocksProbed,
		DiscoveredBlocks:  rpt.DiscoveredBlocks,
		OOBPagesScanned:   rpt.OOBPagesScanned,
		MappingsRecovered: rpt.MappingsRecovered,
		RollForwardWins:   rpt.RollForwardWins,
		EvacuationsQueued: rpt.EvacuationsQueued,
	}
	if verify {
		if err := recovery.Verify(ctrl, s.mgr.Ledger()); err != nil {
			return out, fmt.Errorf("cubeftl: post-mount verification: %w", err)
		}
		out.Verified = true
	}
	s.eng, s.dev, s.ctrl, s.cube = eng, dev, ctrl, cube
	s.hub, s.sampler = nil, nil
	s.outstanding = 0
	s.mgr = recovery.Attach(ctrl, s.mgr.System(), recovery.Options{
		CkptIntervalNs: sim.Time(s.opts.CkptInterval),
		Ledger:         s.mgr.Ledger(),
	})
	return out, nil
}

// RunWorkloadUntil drives the named workload like RunWorkload but halts
// the simulation at the given absolute simulated time without draining:
// buffered writes, in-flight programs, and possibly active GC are left
// mid-flight. This is the setup for PowerCut — run to the cut instant,
// cut, then Remount. The returned stats cover the requests that
// completed before the deadline.
func (s *SSD) RunWorkloadUntil(name string, requests, queueDepth int, deadline time.Duration) (RunStats, error) {
	prof, ok := workload.ByName(name)
	if !ok {
		return RunStats{}, fmt.Errorf("cubeftl: unknown workload %q (have %v)", name, Workloads())
	}
	if requests <= 0 {
		requests = workload.DefaultRunConfig().Requests
	}
	if queueDepth <= 0 {
		queueDepth = workload.DefaultRunConfig().QueueDepth
	}
	gen := workload.NewStream(prof, s.ctrl.LogicalPages(), s.dev.Config().Seed+0xABCD)
	mr, err := workload.RunTenants(s.ctrl, []workload.TenantSpec{{
		Gen:      gen,
		Requests: requests,
		Queue:    host.QueueConfig{Tenant: gen.Name(), Depth: queueDepth},
	}}, workload.MultiRunConfig{DispatchWidth: queueDepth, DeadlineNs: sim.Time(deadline)})
	if err != nil {
		return RunStats{}, err
	}
	t := mr.Tenants[0]
	st := s.ctrl.Stats()
	return RunStats{
		Requests:       t.Requests,
		Elapsed:        time.Duration(t.ElapsedNs),
		IOPS:           t.IOPS(),
		ReadP50:        time.Duration(t.ReadLat.Percentile(50)),
		ReadP90:        time.Duration(t.ReadLat.Percentile(90)),
		ReadP99:        time.Duration(t.ReadLat.Percentile(99)),
		WriteP50:       time.Duration(t.WriteLat.Percentile(50)),
		WriteP90:       time.Duration(t.WriteLat.Percentile(90)),
		WriteP99:       time.Duration(t.WriteLat.Percentile(99)),
		MeanTPROG:      time.Duration(st.MeanTPROGNs()),
		ReadRetries:    st.ReadRetries,
		GCRuns:         st.GCCount,
		Reprograms:     st.Reprograms,
		BufferHits:     st.BufferHits,
		DataMismatches: st.DataMismatches,

		ProgramFailures: st.ProgramFailures,
		EraseFailures:   st.EraseFailures,
		ReadFaults:      st.ReadFaults,
		RetiredBlocks:   st.RetiredBlocks,
		FaultRecoveries: st.FaultRecoveries,
		WriteRejects:    st.WriteRejects,
		DegradedDies:    st.DegradedDies,
		FencedPrograms:  st.FencedPrograms,
		TraceHash:       mr.TraceHash,
	}, nil
}
