package cubeftl

// Fleet-mode facade (DESIGN.md §14): real-trace replay onto a single
// simulated SSD or a sharded fleet of them, with host-side DRAM
// caching. Wraps internal/workload's trace parsers and internal/fleet.

import (
	"fmt"
	"io"
	"time"

	"cubeftl/internal/cache"
	"cubeftl/internal/fleet"
	"cubeftl/internal/telemetry"
	"cubeftl/internal/workload"
)

// Trace format names accepted by TraceReplayOptions.Format. Aliases of
// the internal parser names so facade callers need no internal import.
const (
	TraceFormatAuto = workload.FormatAuto
	TraceFormatMSR  = workload.FormatMSR
	TraceFormatFIU  = workload.FormatFIU
)

// Typed trace errors re-exported for errors.Is across the facade.
var (
	ErrTraceEmpty      = workload.ErrTraceEmpty
	ErrTraceRecord     = workload.ErrTraceRecord
	ErrTraceOutOfOrder = workload.ErrTraceOutOfOrder
	ErrTraceFormat     = workload.ErrTraceFormat
)

// TraceReplayOptions shapes trace ingestion for ReplayTrace / RunFleet.
type TraceReplayOptions struct {
	// Format selects the parser: TraceFormatAuto (default, sniffs the
	// first record), TraceFormatMSR, or TraceFormatFIU.
	Format string
	// TimeCompression divides inter-arrival gaps (10 = replay a
	// day-long trace in 1/10 of its simulated span); <= 1 = none.
	TimeCompression float64
	// Tolerant skips malformed records and clamps out-of-order
	// timestamps instead of failing with a typed error.
	Tolerant bool
	// MaxRequests bounds ingestion (0 = whole trace).
	MaxRequests int
	// QueueDepth is the closed-loop window for single-device replay
	// (default 32; fleet replay is open-loop and ignores it).
	QueueDepth int
}

func (o TraceReplayOptions) parse(name string, r io.Reader) (*workload.TimedTrace, error) {
	return workload.ParseTimedTrace(name, r, workload.TraceOptions{
		Format:          o.Format,
		TimeCompression: o.TimeCompression,
		Tolerant:        o.Tolerant,
		MaxRequests:     o.MaxRequests,
	})
}

// ReplayTrace parses an MSR-Cambridge or FIU block trace from r and
// replays it closed-loop against this SSD, folding the trace's address
// space onto the device's logical pages and carrying inter-arrival
// gaps as think time. Returns the same RunStats as RunWorkload.
func (s *SSD) ReplayTrace(name string, r io.Reader, opt TraceReplayOptions) (RunStats, error) {
	tr, err := opt.parse(name, r)
	if err != nil {
		return RunStats{}, err
	}
	if err := tr.Remap(int64(s.ctrl.LogicalPages()), opt.Tolerant); err != nil {
		return RunStats{}, err
	}
	depth := opt.QueueDepth
	if depth <= 0 {
		depth = 32
	}
	res := workload.Run(s.ctrl, tr.ToTrace(true), workload.RunConfig{Requests: tr.Len(), QueueDepth: depth})
	st := s.ctrl.Stats()
	return RunStats{
		Requests:       res.Requests,
		Elapsed:        time.Duration(res.ElapsedNs),
		IOPS:           res.IOPS(),
		ReadP50:        time.Duration(res.ReadLat.Percentile(50)),
		ReadP90:        time.Duration(res.ReadLat.Percentile(90)),
		ReadP99:        time.Duration(res.ReadLat.Percentile(99)),
		WriteP50:       time.Duration(res.WriteLat.Percentile(50)),
		WriteP90:       time.Duration(res.WriteLat.Percentile(90)),
		WriteP99:       time.Duration(res.WriteLat.Percentile(99)),
		MeanTPROG:      time.Duration(st.MeanTPROGNs()),
		ReadRetries:    st.ReadRetries,
		GCRuns:         st.GCCount,
		Reprograms:     st.Reprograms,
		BufferHits:     st.BufferHits,
		DataMismatches: st.DataMismatches,
		TraceHash:      res.TraceHash,
	}, nil
}

// Placement policy names accepted by FleetOptions.Placement.
const (
	PlacementHash     = fleet.PlaceHash
	PlacementRange    = fleet.PlaceRange
	PlacementCapacity = fleet.PlaceCapacity
)

// Cache replacement policy names accepted by FleetOptions.CachePolicy.
const (
	CacheLRU = cache.PolicyLRU
	Cache2Q  = cache.Policy2Q
)

// FleetOptions configures a sharded fleet run. The zero value selects
// 4 shards x 1024 tenants of cubeFTL devices with caching disabled.
type FleetOptions struct {
	Shards    int    // independent simulated SSDs (default 4)
	Tenants   int    // logical tenants across the fleet (default 1024)
	Placement string // PlacementHash (default) | PlacementRange | PlacementCapacity
	Seed      uint64 // roots per-shard device seeds and placement (default 1)

	FTL            string // FTLCube (default) | FTLPage | FTLVert
	BlocksPerChip  int    // per-shard device scale (default 16)
	Channels       int    // 0 = device default (2)
	DiesPerChannel int    // 0 = device default (4)

	// CapacityJitter / AgeJitter vary each shard's blocks-per-chip /
	// P/E count by up to the given fraction (seed-derived).
	CapacityJitter  float64
	PE              int
	RetentionMonths float64
	AgeJitter       float64

	QueuesPerShard int // host queue pairs per shard (default 8)
	QueueDepth     int // per-queue depth (default 32)

	// CachePages enables each shard's host-side DRAM cache (per-shard
	// capacity in 16 KB pages; 0 disables).
	CachePages  int
	CachePolicy string // CacheLRU (default) | Cache2Q
	CacheMode   string // "through" (default) | "back"
	// CacheHitLatency is the DRAM service time charged to cache hits
	// (default 2 us).
	CacheHitLatency time.Duration

	// PrefillPages sequentially maps the first N pages of every shard
	// before replay (0 = none).
	PrefillPages int64
	// Repeat replays the trace N times back to back (default 1);
	// MaxRequests bounds the fleet-wide request count (0 = all).
	Repeat      int
	MaxRequests int

	// SampleInterval enables per-shard sim-clock sampling; the shard
	// streams merge into a deterministic fleet time series written to
	// StatsOut as JSONL. Defaults to 1ms when a sink is attached but no
	// interval given; 0 with no sink disables sampling.
	SampleInterval time.Duration
	// StatsOut receives the merged fleet series, one JSON object per
	// sampling interval (nil = discard the series).
	StatsOut io.Writer
	// Obs attaches a live /metrics endpoint (StartFleetObs) that serves
	// each shard's latest sample while the run is in flight.
	Obs *FleetObs
}

// FleetShardStats is one shard's summary of a fleet run.
type FleetShardStats struct {
	Shard     int
	Tenants   int
	Requests  int64
	HitRate   float64
	GCRuns    int64
	TraceHash uint64
	Degraded  bool
}

// FleetStats summarizes a fleet run. Report is the deterministic
// byte-stable rendering (fixed seed + trace => identical bytes); Wall
// is the measured host wall-clock time and is excluded from Report.
type FleetStats struct {
	Report   string
	Requests int64
	Reads    int64
	Writes   int64

	HitRate     float64
	FlushWrites int64

	ReadP50, ReadP99   time.Duration
	WriteP50, WriteP99 time.Duration

	SimElapsed time.Duration
	Wall       time.Duration
	// TraceHash chains every shard's arbitration hash in shard order.
	TraceHash uint64

	// SeriesSamples is the number of merged fleet time-series rows
	// collected (0 unless SampleInterval/StatsOut/Obs enabled sampling).
	SeriesSamples int

	Shards []FleetShardStats
}

// FleetObs is a live observability endpoint for a fleet run: while the
// shards replay, /metrics serves each shard's most recent sim-clock
// sample (progress, backlog, cache hit counters, windowed read p99)
// plus fleet aggregates, in Prometheus text exposition. Pass it via
// FleetOptions.Obs; Close it when done.
type FleetObs struct {
	live *fleet.LiveView
	srv  *telemetry.ObsServer
}

// StartFleetObs binds addr (host:port, :0 for ephemeral) and serves
// /metrics for a fleet of the given shard count.
func StartFleetObs(addr string, shards int) (*FleetObs, error) {
	if shards <= 0 {
		shards = fleet.DefaultConfig().Shards
	}
	o := &FleetObs{live: fleet.NewLiveView(shards), srv: telemetry.NewObsServer()}
	o.srv.SetMetrics(o.live.WriteMetrics)
	if _, err := o.srv.Start(addr); err != nil {
		return nil, err
	}
	return o, nil
}

// Addr returns the bound listen address.
func (o *FleetObs) Addr() string { return o.srv.Addr() }

// Close shuts the endpoint down.
func (o *FleetObs) Close() error { return o.srv.Close() }

func (o FleetOptions) toConfig() (fleet.Config, error) {
	mode, err := cache.ParseMode(o.CacheMode)
	if err != nil {
		return fleet.Config{}, err
	}
	ftlName := o.FTL
	switch ftlName {
	case "", FTLCube:
		ftlName = "cube"
	case FTLPage, FTLVert:
	default:
		return fleet.Config{}, fmt.Errorf("cubeftl: fleet supports FTL page|vert|cube, not %q", o.FTL)
	}
	return fleet.Config{
		Shards:          o.Shards,
		Tenants:         o.Tenants,
		Placement:       o.Placement,
		Seed:            o.Seed,
		Policy:          ftlName,
		BlocksPerChip:   o.BlocksPerChip,
		Channels:        o.Channels,
		DiesPerChannel:  o.DiesPerChannel,
		CapacityJitter:  o.CapacityJitter,
		PE:              o.PE,
		RetentionMonths: o.RetentionMonths,
		AgeJitter:       o.AgeJitter,
		QueuesPerShard:  o.QueuesPerShard,
		QueueDepth:      o.QueueDepth,
		Cache: cache.Config{
			SizePages: o.CachePages,
			Policy:    o.CachePolicy,
			Mode:      mode,
		},
		CacheHitNs:   int64(o.CacheHitLatency),
		PrefillPages: o.PrefillPages,
		Repeat:       o.Repeat,
		MaxRequests:  o.MaxRequests,
	}, nil
}

// RunFleet parses a block trace from r and replays it across a fleet
// of opts.Shards simulated SSDs (each on its own goroutine), mapping
// synthesized tenants onto shards by the configured placement policy.
func RunFleet(opts FleetOptions, traceName string, r io.Reader, topt TraceReplayOptions) (FleetStats, error) {
	tr, err := topt.parse(traceName, r)
	if err != nil {
		return FleetStats{}, err
	}
	cfg, err := opts.toConfig()
	if err != nil {
		return FleetStats{}, err
	}
	cfg.SampleIntervalNs = int64(opts.SampleInterval)
	if cfg.SampleIntervalNs <= 0 && (opts.StatsOut != nil || opts.Obs != nil) {
		cfg.SampleIntervalNs = int64(time.Millisecond)
	}
	if opts.Obs != nil {
		cfg.Live = opts.Obs.live
	}
	res, err := fleet.Run(cfg, tr)
	if err != nil {
		return FleetStats{}, err
	}
	out := FleetStats{
		Report:      res.Report(),
		Requests:    res.Requests,
		Reads:       res.Reads,
		Writes:      res.Writes,
		HitRate:     res.HitRate(),
		FlushWrites: res.FlushWrites,
		ReadP50:     time.Duration(res.ReadLat.Percentile(50)),
		ReadP99:     time.Duration(res.ReadLat.Percentile(99)),
		WriteP50:    time.Duration(res.WriteLat.Percentile(50)),
		WriteP99:    time.Duration(res.WriteLat.Percentile(99)),
		SimElapsed:  time.Duration(res.SimElapsedNs),
		Wall:        time.Duration(res.WallNs),
		TraceHash:   res.TraceHash,
	}
	out.SeriesSamples = len(res.Series)
	if opts.StatsOut != nil {
		if err := res.SeriesJSONL(opts.StatsOut); err != nil {
			return FleetStats{}, err
		}
	}
	for _, s := range res.Shards {
		out.Shards = append(out.Shards, FleetShardStats{
			Shard:     s.Shard,
			Tenants:   s.Tenants,
			Requests:  s.Requests,
			HitRate:   s.CacheStats.HitRate(),
			GCRuns:    s.GCCount,
			TraceHash: s.TraceHash,
			Degraded:  s.Degraded,
		})
	}
	return out, nil
}
