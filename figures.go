package cubeftl

import (
	"fmt"
	"io"
	"sort"

	"cubeftl/internal/experiment"
)

// FigureIDs lists the paper figures (and extension/ablation studies)
// this library can regenerate, in sorted order.
func FigureIDs() []string {
	ids := make([]string, 0, len(figures))
	for id := range figures {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// evalOpts builds the standard SSD-evaluation options for a seed.
func evalOpts(seed uint64, pe int, retention float64) experiment.SSDOpts {
	o := experiment.DefaultSSDOpts()
	o.Seed = seed
	o.PE, o.RetentionMonths = pe, retention
	return o
}

var figures = map[string]func(seed uint64) *experiment.Table{
	"fig5":  func(seed uint64) *experiment.Table { return experiment.Fig05(seed).Table() },
	"fig6":  func(seed uint64) *experiment.Table { return experiment.Fig06(seed).Table() },
	"fig8":  func(seed uint64) *experiment.Table { return experiment.Fig08(seed).Table() },
	"fig10": func(seed uint64) *experiment.Table { return experiment.Fig10(seed).Table() },
	"fig11": func(seed uint64) *experiment.Table { return experiment.Fig11(seed).Table() },
	"fig13": func(seed uint64) *experiment.Table { return experiment.Fig13(seed).Table() },
	"fig14": func(seed uint64) *experiment.Table { return experiment.Fig14(seed).Table() },
	"fig17a": func(seed uint64) *experiment.Table {
		return experiment.Fig17(evalOpts(seed, 0, 0)).Table()
	},
	"fig17b": func(seed uint64) *experiment.Table {
		return experiment.Fig17(evalOpts(seed, 2000, 1)).Table()
	},
	"fig17c": func(seed uint64) *experiment.Table {
		return experiment.Fig17(evalOpts(seed, 2000, 12)).Table()
	},
	"fig18": func(seed uint64) *experiment.Table {
		return experiment.Fig18(evalOpts(seed, 0, 0)).Table()
	},
	"tprog": func(seed uint64) *experiment.Table {
		return experiment.TprogAudit(evalOpts(seed, 0, 0)).Table()
	},
	"relwork": func(seed uint64) *experiment.Table {
		return experiment.RelWork(evalOpts(seed, 0, 0)).Table()
	},
	"ext-tail": func(seed uint64) *experiment.Table {
		return experiment.ExtTailLatency(evalOpts(seed, 0, 0)).Table()
	},
	"ext-retry": func(seed uint64) *experiment.Table {
		return experiment.ExtRetryPipeline(evalOpts(seed, 0, 0)).Table()
	},
	"ext-lifetime": func(seed uint64) *experiment.Table {
		o := evalOpts(seed, 0, 0)
		o.RetryMode = "ort-pr"
		return experiment.ExtLifetime(o).Table()
	},
	"ext-faults": func(seed uint64) *experiment.Table {
		return experiment.ExtFaultTolerance(evalOpts(seed, 0, 0)).Table()
	},
	"ext-qos": func(seed uint64) *experiment.Table {
		return experiment.ExtQoS(evalOpts(seed, 0, 0)).Table()
	},
	"ext-parallel": func(seed uint64) *experiment.Table {
		return experiment.ExtParallelScaling(evalOpts(seed, 0, 0)).Table()
	},
	"abl-mu": func(seed uint64) *experiment.Table {
		return experiment.AblationMuThreshold(evalOpts(seed, 0, 0)).Table()
	},
	"abl-blocks": func(seed uint64) *experiment.Table {
		return experiment.AblationActiveBlocks(evalOpts(seed, 0, 0)).Table()
	},
	"abl-order": func(seed uint64) *experiment.Table {
		return experiment.AblationProgramOrder(evalOpts(seed, 0, 0)).Table()
	},
	"abl-ort": func(seed uint64) *experiment.Table {
		return experiment.AblationORTGranularity(evalOpts(seed, 0, 0)).Table()
	},
	"abl-safety": func(seed uint64) *experiment.Table {
		return experiment.AblationSafetyCheck(evalOpts(seed, 0, 0)).Table()
	},
}

// ReproduceFigure runs the experiment behind one of the paper's data
// figures and prints its rows/series to w. Valid ids are returned by
// FigureIDs.
func ReproduceFigure(id string, seed uint64, w io.Writer) error {
	f, ok := figures[id]
	if !ok {
		return fmt.Errorf("cubeftl: unknown figure %q (have %v)", id, FigureIDs())
	}
	f(seed).Fprint(w)
	return nil
}

// ReproduceFigureJSON is ReproduceFigure with machine-readable output
// (one JSON object: title, columns, rows, notes).
func ReproduceFigureJSON(id string, seed uint64, w io.Writer) error {
	f, ok := figures[id]
	if !ok {
		return fmt.Errorf("cubeftl: unknown figure %q (have %v)", id, FigureIDs())
	}
	return f(seed).FprintJSON(w)
}
