# Tier-1 gate: everything a PR must keep green. The chaos soak and other
# long tests hide behind -short here; `make soak` runs them in full.
GO ?= go

.PHONY: tier1 build vet test race soak figures demo clean

tier1: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-checked short run (skips the chaos soak and long experiments).
race:
	$(GO) test -race -short ./...

# Full suite including the fault-injection chaos soak.
soak:
	$(GO) test -race ./...

# Regenerate every paper figure/extension table.
figures:
	$(GO) run ./cmd/paperfig

# Multi-tenant QoS demo: RR vs WRR vs WRR + rate cap.
demo:
	$(GO) run ./examples/multi-tenant

clean:
	$(GO) clean ./...
