# Tier-1 gate: everything a PR must keep green. The chaos soak and other
# long tests hide behind -short here; `make soak` runs them in full.
GO ?= go

.PHONY: tier1 build vet test race race-core bench-scale soak figures demo clean

tier1: build vet race race-core

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-checked short run (skips the chaos soak and long experiments).
race:
	$(GO) test -race -short ./...

# Full (non-short) race run over the concurrency-sensitive core: the
# event engine, the FTL (per-die degraded transitions), and the
# multi-queue host front end.
race-core:
	$(GO) test -race ./internal/sim ./internal/ftl ./internal/host

# Multi-die scaling gate: fails if a 2x4 backend delivers less than
# 1.5x the single-die Mixed IOPS (or if same-seed replay diverges).
bench-scale:
	$(GO) test -run TestBenchScale -v ./internal/experiment

# Full suite including the fault-injection chaos soak.
soak:
	$(GO) test -race ./...

# Regenerate every paper figure/extension table.
figures:
	$(GO) run ./cmd/paperfig

# Multi-tenant QoS demo: RR vs WRR vs WRR + rate cap.
demo:
	$(GO) run ./examples/multi-tenant

clean:
	$(GO) clean ./...
