# Tier-1 gate: everything a PR must keep green. The chaos soak and other
# long tests hide behind -short here; `make soak` runs them in full.
GO ?= go

.PHONY: tier1 build vet test race race-core bench-scale bench-telemetry bench-json trace-demo fleet-smoke fleet-demo metrics-smoke lifetime-smoke soak soak-short figures demo clean

tier1: build vet race race-core fleet-smoke metrics-smoke lifetime-smoke soak-short

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-checked short run (skips the chaos soak and long experiments).
race:
	$(GO) test -race -short ./...

# Full (non-short) race run over the concurrency-sensitive core: the
# event engine, the FTL (per-die degraded transitions), the multi-queue
# host front end, the crash-consistency subsystem (power-cut sweep),
# the telemetry registry/tracer, the network block service (live
# concurrent clients against the single-threaded core), and the
# read-retry pipeline layers (nand ladder/latency model, core retry
# table and its checkpoint serialization).
race-core:
	$(GO) test -race ./internal/sim ./internal/ftl ./internal/host ./internal/recovery ./internal/telemetry ./internal/server ./internal/fleet ./internal/cache ./internal/nand ./internal/core ./internal/lifetime

# Multi-die scaling gate: fails if a 2x4 backend delivers less than
# 1.5x the single-die Mixed IOPS (or if same-seed replay diverges).
bench-scale:
	$(GO) test -run TestBenchScale -v ./internal/experiment

# Observability overhead check: Mixed with telemetry fully off vs fully
# on (tracer + 1ms sampler). The telemetry-off number is the one the
# <2% overhead contract in EXPERIMENTS.md is measured against.
bench-telemetry:
	$(GO) test -run xxx -bench 'BenchmarkMixedTelemetry' -benchtime 5x -count 3 .

# Machine-readable benchmark snapshot: runs the scale and telemetry
# scenarios and writes BENCH_core.json (IOPS, p50/p99, wall time, seed,
# git rev) so the perf trajectory is tracked across commits.
bench-json:
	$(GO) run ./cmd/benchjson -out BENCH_core.json

# Fleet smoke, tier-1 sized (a few seconds): the checked-in MSR fixture
# replayed across 8 shards and 1024 tenants behind write-back caches.
# The report on stdout is byte-stable for a fixed seed; diffing two runs
# is the quickest fleet-determinism check outside the test suite.
fleet-smoke:
	$(GO) run ./cmd/cubefleet -trace internal/workload/testdata/msr_sample.csv \
		-shards 8 -tenants 1024 -blocks 8 -channels 1 -dies 2 \
		-cache-pages 1024 -cache-policy 2q -cache-mode back -compress 20

# Fleet demo at deployment-flavored scale: capacity-aware placement over
# process-varied shards (±25% capacity jitter), 2048 tenants, the trace
# repeated 4x, per-shard 2Q write-back caches.
fleet-demo:
	$(GO) run ./cmd/cubefleet -trace internal/workload/testdata/msr_sample.csv \
		-shards 8 -tenants 2048 -placement capacity -capacity-jitter 0.25 \
		-blocks 12 -channels 1 -dies 2 -repeat 4 \
		-cache-pages 2048 -cache-policy 2q -cache-mode back -compress 20

# Chaos trace demo: kill die 3 mid-run and capture the full observability
# bundle — Chrome trace (open in https://ui.perfetto.dev), stats JSONL,
# and the per-stage latency breakdown.
trace-demo:
	$(GO) run ./cmd/cubesim -workload Mixed -requests 8000 -qd 16 \
		-killdie 3 -trace-out trace.json -stats-out stats.jsonl -breakdown

# Observability smoke: boot a real cubeserved with the metrics plane
# on, scrape /metrics and /readyz over HTTP, and assert the required
# exposition families (per-tenant p99, SLO state, retry-table
# counters, per-die health) are served. Fails on any missing family.
METRICS_PORT ?= 9491
metrics-smoke:
	@set -e; \
	$(GO) build -o /tmp/cubeserved-smoke ./cmd/cubeserved; \
	/tmp/cubeserved-smoke -addr 127.0.0.1:7491 -metrics-addr 127.0.0.1:$(METRICS_PORT) \
		-blocks 16 -slo & pid=$$!; \
	trap "kill $$pid 2>/dev/null || true" EXIT; \
	for i in $$(seq 1 50); do \
		curl -fsS -o /dev/null http://127.0.0.1:$(METRICS_PORT)/readyz 2>/dev/null && break; \
		sleep 0.1; \
	done; \
	out=$$(curl -fsS http://127.0.0.1:$(METRICS_PORT)/metrics); \
	for fam in 'cube_server_up 1' 'cube_tenant_read_p99_ns{tenant="lat"}' \
		'cube_tenant_weight{tenant="lat"}' 'cube_slo_enabled 1' \
		'cube_cube_retry_hits' 'cube_cube_ort_hits' \
		'cube_ftl_die_0_degraded' 'cube_events_total' \
		'cube_waf_host_bytes' 'cube_waf_refresh_bytes' \
		'cube_erase_count{die="0",quantile="0.5"}'; do \
		echo "$$out" | grep -qF "$$fam" || { echo "metrics-smoke: missing $$fam"; exit 1; }; \
	done; \
	curl -fsS http://127.0.0.1:$(METRICS_PORT)/healthz >/dev/null; \
	echo "metrics-smoke: PASS (all required families served)"

# Lifetime smoke: fast-forward a refresh+WL device three simulated
# years and assert the lifetime contract — read p99 stays within 2x of
# the same device's fresh baseline and no read goes uncorrectable.
lifetime-smoke:
	$(GO) test -run TestLifetimeSmoke -v ./internal/experiment

# Live-traffic chaos soak, tier-1 sized (<= 60s wall): a real cubeserved
# instance, 6 concurrent TCP clients, fault injection on, die kill and
# power cuts mid-traffic. Exits non-zero on any acked-write loss, stuck
# client, or failed recovery verification. -ab runs static weights then
# the SLO controller and prints the protected tenant's p99 both ways.
soak-short:
	$(GO) run ./cmd/soak -ab -dur 5s -clients 6 -cuts 2 -killdie 1 -slo-target 300us

# Full suite including the fault-injection chaos soak.
soak:
	$(GO) test -race ./...

# Regenerate every paper figure/extension table.
figures:
	$(GO) run ./cmd/paperfig

# Multi-tenant QoS demo: RR vs WRR vs WRR + rate cap.
demo:
	$(GO) run ./examples/multi-tenant

clean:
	$(GO) clean ./...
