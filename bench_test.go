package cubeftl

// One benchmark per data figure/table of the paper, each regenerating
// its experiment and reporting the headline quantity as a custom
// metric, so `go test -bench=. -benchmem` reproduces the evaluation
// end to end. Paper-vs-measured numbers are recorded in EXPERIMENTS.md.

import (
	"io"
	"testing"
	"time"

	"cubeftl/internal/experiment"
	"cubeftl/internal/workload"
)

// benchOpts is the SSD-level configuration for benchmark runs: large
// enough for steady-state behavior, small enough to iterate.
func benchOpts() experiment.SSDOpts {
	o := experiment.DefaultSSDOpts()
	o.Requests = 8000
	return o
}

// BenchmarkFig05IntraLayerSimilarity reproduces Fig 5: deltaH ~= 1
// across word lines of an h-layer, identical per-WL tPROG.
func BenchmarkFig05IntraLayerSimilarity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.Fig05(uint64(i + 1))
		b.ReportMetric(r.MaxDeltaH, "maxDeltaH")
	}
}

// BenchmarkFig06InterLayerVariability reproduces Fig 6: deltaV 1.6
// (fresh) -> 2.3 (2K P/E + 1 year), with per-block differences.
func BenchmarkFig06InterLayerVariability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.Fig06(uint64(i + 1))
		b.ReportMetric(r.DeltaV["0K"], "deltaV-fresh")
		b.ReportMetric(r.DeltaV["2K+1yr"], "deltaV-EOL")
	}
}

// BenchmarkFig08VfySkipBER reproduces Fig 8: per-state skip budgets and
// the ~16.2% tPROG saving of safe verify skipping.
func BenchmarkFig08VfySkipBER(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.Fig08(uint64(i + 1))
		b.ReportMetric(100*r.TPROGReduction, "skip-tPROG-%")
		b.ReportMetric(r.SafeSkipMean[6], "P7-skips")
	}
}

// BenchmarkFig10AdjustMargins reproduces Fig 10: safe V_Start/V_Final
// margins per h-layer at end of life.
func BenchmarkFig10AdjustMargins(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.Fig10(uint64(i + 1))
		max := 0
		for _, mv := range r.SafeMarginMV {
			if mv > max {
				max = mv
			}
		}
		b.ReportMetric(float64(max), "best-margin-mV")
	}
}

// BenchmarkFig11BerEP1Conversion reproduces Fig 11: the S_M -> margin
// conversion with the 1.7 -> 320 mV -> ~19.7% anchor.
func BenchmarkFig11BerEP1Conversion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.Fig11(uint64(i + 1))
		b.ReportMetric(r.Correlation, "berEP1-corr")
		for j, sm := range r.SM {
			if sm == 1.7 {
				b.ReportMetric(100*r.TPROGRed[j], "SM1.7-tPROG-%")
			}
		}
	}
}

// BenchmarkFig13ProgramOrderBER reproduces Fig 13: the three program
// orders are reliability-equivalent (< 3% apart).
func BenchmarkFig13ProgramOrderBER(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.Fig13(uint64(i + 1))
		worst := 0.0
		for _, v := range r.NormBER {
			if d := v - 1; d > worst {
				worst = d
			}
			if d := 1 - v; d > worst {
				worst = d
			}
		}
		b.ReportMetric(100*worst, "order-BER-dev-%")
	}
}

// BenchmarkFig14ReadRetry reproduces Fig 14: the PS-aware ORT reuse
// cuts mean NumRetry by ~66%.
func BenchmarkFig14ReadRetry(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.Fig14(uint64(i + 1))
		b.ReportMetric(r.UnawareMean, "unaware-retries")
		b.ReportMetric(r.AwareMean, "aware-retries")
		b.ReportMetric(100*r.Reduction(), "reduction-%")
	}
}

func reportFig17(b *testing.B, r *experiment.Fig17Result) {
	b.Helper()
	gain, _ := r.MaxGain(2)
	b.ReportMetric(100*gain, "cube-max-gain-%")
	vg, _ := r.MaxGain(1)
	b.ReportMetric(100*vg, "vert-max-gain-%")
}

// BenchmarkFig17aIOPSFresh reproduces Fig 17(a): normalized IOPS of the
// six workloads on the fresh device.
func BenchmarkFig17aIOPSFresh(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := benchOpts()
		o.Seed = uint64(i + 1)
		reportFig17(b, experiment.Fig17(o))
	}
}

// BenchmarkFig17bIOPSMidAge reproduces Fig 17(b): 2K P/E + 1-month
// retention (30% of reads retry).
func BenchmarkFig17bIOPSMidAge(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := benchOpts()
		o.Seed = uint64(i + 1)
		o.PE, o.RetentionMonths = 2000, 1
		reportFig17(b, experiment.Fig17(o))
	}
}

// BenchmarkFig17cIOPSEndOfLife reproduces Fig 17(c): 2K P/E + 1-year
// retention (90% of reads retry; Proxy gains most).
func BenchmarkFig17cIOPSEndOfLife(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := benchOpts()
		o.Seed = uint64(i + 1)
		o.PE, o.RetentionMonths = 2000, 12
		reportFig17(b, experiment.Fig17(o))
	}
}

// BenchmarkFig18WriteLatencyCDF reproduces Fig 18(a): the Rocks write-
// latency CDF under the four FTLs.
func BenchmarkFig18WriteLatencyCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := benchOpts()
		o.Seed = uint64(i + 1)
		r := experiment.Fig18(o)
		b.ReportMetric(float64(r.WriteP90[0])/1e6, "page-wP90-ms")
		b.ReportMetric(float64(r.WriteP90[3])/1e6, "cube-wP90-ms")
	}
}

// BenchmarkFig18ReadLatencyCDF reproduces Fig 18(b): the Rocks read-
// latency CDF under the four FTLs.
func BenchmarkFig18ReadLatencyCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := benchOpts()
		o.Seed = uint64(i + 1)
		r := experiment.Fig18(o)
		b.ReportMetric(float64(r.ReadP90[0])/1e6, "page-rP90-ms")
		b.ReportMetric(float64(r.ReadP90[3])/1e6, "cube-rP90-ms")
	}
}

// BenchmarkVfySkipReduction isolates §4.1.1's 16.2% anchor.
func BenchmarkVfySkipReduction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.Fig08(uint64(i + 1))
		b.ReportMetric(100*r.TPROGReduction, "tPROG-reduction-%")
	}
}

// BenchmarkTprogReductionByFTL reproduces §6.2's audit: vertFTL ~8%,
// cubeFTL ~30% (follower WLs; ~22% overall with leaders).
func BenchmarkTprogReductionByFTL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := benchOpts()
		o.Seed = uint64(i + 1)
		r := experiment.TprogAudit(o)
		b.ReportMetric(100*r.VertReduction(), "vert-%")
		b.ReportMetric(100*r.CubeReduction(), "cube-%")
	}
}

// BenchmarkORTOverhead reproduces §5.1's space-overhead computation.
func BenchmarkORTOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dev, err := New(DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		cs := dev.Cube()
		frac := float64(cs.ORTBytes) / float64(dev.CapacityBytes())
		b.ReportMetric(frac*1e6, "ORT-ppm")
	}
}

// Ablation benches for the design choices DESIGN.md calls out.

func BenchmarkAblationMuThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := benchOpts()
		o.Seed = uint64(i + 1)
		r := experiment.AblationMuThreshold(o)
		b.ReportMetric(r.IOPS[2], "mu0.9-IOPS") // the paper's threshold
	}
}

func BenchmarkAblationActiveBlocks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := benchOpts()
		o.Seed = uint64(i + 1)
		r := experiment.AblationActiveBlocks(o)
		b.ReportMetric(r.IOPS[1], "two-blocks-IOPS") // the paper's choice
	}
}

func BenchmarkAblationProgramOrder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := benchOpts()
		o.Seed = uint64(i + 1)
		r := experiment.AblationProgramOrder(o)
		b.ReportMetric(r.IOPS[2], "MOS-IOPS")
	}
}

func BenchmarkAblationORTGranularity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := benchOpts()
		o.Seed = uint64(i + 1)
		r := experiment.AblationORTGranularity(o)
		b.ReportMetric(r.Extra["retries/read"][0], "perlayer-retries")
	}
}

func BenchmarkAblationSafetyCheck(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := benchOpts()
		o.Seed = uint64(i + 1)
		r := experiment.AblationSafetyCheck(o)
		b.ReportMetric(r.Extra["reprograms"][0], "reprograms-on")
	}
}

// BenchmarkWorkloadThroughput measures raw simulator speed: simulated
// host requests processed per wall-clock second under cubeFTL.
func BenchmarkWorkloadThroughput(b *testing.B) {
	o := benchOpts()
	o.Requests = 4000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := experiment.RunWorkload(experiment.PolicyCube, workload.Mongo, o)
		if out.Result.Requests != int64(o.Requests) {
			b.Fatalf("incomplete run: %d", out.Result.Requests)
		}
	}
}

// benchMixed runs the Mixed workload once with or without the full
// telemetry layer (tracer + sampler to a discard sink + stage
// attribution) — the pair quantifies observability overhead.
func benchMixed(b *testing.B, enableTelemetry bool) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		dev, err := New(Options{FTL: FTLCube, BlocksPerChip: 32, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		dev.Prefill(int64(dev.LogicalPages()) * 6 / 10)
		dev.ResetStats()
		if enableTelemetry {
			dev.EnableTelemetry(TelemetryConfig{Trace: true})
			if err := dev.StartStats(io.Discard, time.Millisecond); err != nil {
				b.Fatal(err)
			}
		}
		st, err := dev.RunWorkload("Mixed", 4000, 24)
		if err != nil {
			b.Fatal(err)
		}
		if st.Requests != 4000 {
			b.Fatalf("incomplete run: %d", st.Requests)
		}
		if enableTelemetry {
			if err := dev.CloseStats(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkMixedTelemetryOff is the baseline for the observability
// overhead contract: telemetry disabled entirely (nil hub in the
// datapath).
func BenchmarkMixedTelemetryOff(b *testing.B) { benchMixed(b, false) }

// BenchmarkMixedTelemetryOn runs the identical workload with spans,
// events, stage attribution, and 1 ms sampling all enabled.
func BenchmarkMixedTelemetryOn(b *testing.B) { benchMixed(b, true) }

// BenchmarkExtensionTailLatency runs the §8 future-work extension:
// PS-aware reads plus program/erase suspend-resume for deterministic
// read latency at end of life.
func BenchmarkExtensionTailLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := benchOpts()
		o.Seed = uint64(i + 1)
		r := experiment.ExtTailLatency(o)
		b.ReportMetric(float64(r.ReadP999[0])/1e6, "page-rP999-ms")
		b.ReportMetric(float64(r.ReadP999[3])/1e6, "cube+susp-rP999-ms")
		b.ReportMetric(float64(r.SpreadNs[3])/1e6, "cube+susp-spread-ms")
	}
}

// BenchmarkRelatedWork runs the §7 comparison: cubeFTL vs the
// PS-unaware acceleration baselines across the lifetime.
func BenchmarkRelatedWork(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := benchOpts()
		o.Seed = uint64(i + 1)
		r := experiment.RelWork(o)
		b.ReportMetric(r.Norm[0][1], "isp-fresh-norm")
		b.ReportMetric(r.Norm[1][1], "isp-EOL-norm")
		b.ReportMetric(r.Norm[1][3], "cube-EOL-norm")
	}
}
