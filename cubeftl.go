// Package cubeftl is a full-system reproduction of "Exploiting Process
// Similarity of 3D Flash Memory for High Performance SSDs" (Shim et al.,
// MICRO-52, 2019).
//
// It provides, from the bottom up:
//
//   - a statistical process model of 3D TLC NAND (inter-layer
//     variability, intra-layer similarity, aging),
//   - a micro-operation-level NAND chip simulator (ISPP program loops,
//     verify accounting, read-retry ladders, erase, wear),
//   - a discrete-event SSD (buses, chips, write buffer, GC),
//   - five FTLs: the PS-unaware pageFTL, vertFTL (Hung et al.) and
//     ispFTL (Pan et al.) baselines, and the paper's PS-aware cubeFTL
//     (OPM + WAM + MOS + safety check) plus its cubeFTL- ablation,
//   - the paper's six evaluation workloads, and
//   - runners that regenerate every data figure of the paper.
//
// This file is the public facade: build a simulated SSD, drive it with
// host I/O or one of the named workloads, and read back measurements.
// Everything here wraps the richer packages under internal/.
package cubeftl

import (
	"errors"
	"fmt"
	"io"
	"time"

	"cubeftl/internal/core"
	"cubeftl/internal/ftl"
	"cubeftl/internal/host"
	"cubeftl/internal/lifetime"
	"cubeftl/internal/nand"
	"cubeftl/internal/recovery"
	"cubeftl/internal/sim"
	"cubeftl/internal/ssd"
	"cubeftl/internal/telemetry"
	"cubeftl/internal/vth"
	"cubeftl/internal/workload"
)

// FTL names accepted by Options.FTL.
const (
	FTLPage      = "page"  // PS-unaware page-mapping baseline
	FTLVert      = "vert"  // static V_Final reduction (Hung et al. [13])
	FTLIsp       = "isp"   // wear-keyed ISPP-step scaling (Pan et al. [31])
	FTLCube      = "cube"  // the paper's PS-aware cubeFTL
	FTLCubeMinus = "cube-" // cubeFTL with the WAM disabled (§6.3)
)

// Options configures a simulated SSD. The zero value selects the
// paper's configuration scaled to a small device; call DefaultOptions
// for the full 32 GB evaluation target.
type Options struct {
	FTL string // one of FTLPage, FTLVert, FTLCube, FTLCubeMinus

	Channels       int // independent data buses; default 2
	DiesPerChannel int // NAND dies behind each channel; default 4
	BlocksPerChip  int // default 64 (paper's chips have 428)
	PlanesPerChip  int // default 1 (the paper's model); 2+ overlaps ops within a die
	Seed           uint64

	// Buses/ChipsPerBus are the pre-topology names for
	// Channels/DiesPerChannel; they apply only when the new fields are
	// zero. Deprecated: set Channels and DiesPerChannel.
	Buses       int
	ChipsPerBus int

	// DieAffinity makes the multi-queue host front end prefer fetching
	// commands whose target die is idle (reads to busy dies wait while
	// reads to idle dies dispatch), increasing array-level overlap.
	DieAffinity bool

	WriteBufferPages int // default 192

	// Pre-aging (paper §6.2): wear and pinned retention for all reads.
	PECycles        int
	RetentionMonths float64

	// SuspendOps enables program/erase suspend-resume so reads
	// interleave with long chip operations (§8 extension).
	SuspendOps bool
	// WearAware spreads P/E cycles by allocating the least-worn erased
	// block (static wear leveling).
	WearAware bool
	// Refresh enables the retention-aware background scrubber: blocks
	// whose retention age or predicted E<->P1 error rate crosses the
	// refresh policy's thresholds are rewritten before the ECC cliff.
	// The patrol is funded by host reads so it yields to tenant traffic.
	Refresh bool
	// WearLevel enables cross-block static wear leveling: after a GC
	// cycle completes, cold data is moved off the die's least-worn block
	// when the erase-count spread exceeds the wear policy's threshold.
	// Implies WearAware allocation.
	WearLevel bool
	// VerifyData turns on the end-to-end integrity oracle: tagged
	// payloads flow through flush, GC, and read-back verification, and
	// RunStats.DataMismatches reports violations (always zero for a
	// correct FTL). Costs memory; intended for testing.
	VerifyData bool

	// Fault injection (deterministic, seed-derived; see internal/nand).
	// All rates are per-operation probabilities; zero disables the
	// mechanism. The FTL absorbs injected faults by retiring blocks and
	// re-issuing data — see RunStats' fault counters.
	ProgramFailRate float64 // program-status failure per word-line program
	EraseFailRate   float64 // erase failure per block erase (grows a bad block)
	ReadFaultRate   float64 // transient fault per page read (re-issued)
	FactoryBadRate  float64 // fraction of blocks factory-marked bad at boot

	// RetryMode selects the read-retry optimization stack (DESIGN.md
	// §15): "baseline" (no read-offset caches, serialized retries),
	// "ort" (the paper's per-h-layer offset cache — the default, and
	// bit-identical to pre-pipeline traces at the same seed), "ort-pr"
	// (ORT + pipelined sense/decode + the decaying age-aware retry
	// table), or "ort-pr-ar" (ort-pr + adaptive early sense
	// termination). Empty selects "ort".
	RetryMode string

	// Recovery enables the crash-consistency subsystem (DESIGN.md §12):
	// a checkpointed and journaled system area, durable-ack semantics
	// (host write acknowledgments wait for the write's mapping record
	// to be durable), and the PowerCut/Remount cycle.
	Recovery bool
	// CkptInterval is the periodic checkpoint cadence in simulated time
	// (0 selects the 20ms default; negative disables periodic
	// checkpoints). Meaningful only with Recovery.
	CkptInterval time.Duration
}

// RetryModes lists the accepted Options.RetryMode values in increasing
// optimization order.
func RetryModes() []string { return append([]string(nil), core.RetryModeNames...) }

// DefaultOptions returns the paper's full evaluation device (2 buses x
// 4 chips x 428 blocks ~= 31.5 GB) running cubeFTL.
func DefaultOptions() Options {
	return Options{
		FTL:            FTLCube,
		Channels:       2,
		DiesPerChannel: 4,
		BlocksPerChip:  428,
		Seed:           1,
	}
}

// SSD is a simulated 3D-NAND solid-state drive with one of the paper's
// FTLs. It is not safe for concurrent use: the simulation is a single
// deterministic event loop.
type SSD struct {
	eng         *sim.Engine
	dev         *ssd.Device
	ctrl        *ftl.Controller
	cube        *core.CubeFTL // non-nil for cube flavors
	dieAffinity bool
	hub         *telemetry.Hub     // nil until EnableTelemetry
	sampler     *telemetry.Sampler // nil until StartStats

	// Crash-consistency state (Options.Recovery). opts and ctrlCfg are
	// retained so Remount can rebuild the volatile half of the device;
	// outstanding counts facade-issued host ops not yet completed (Run's
	// stop condition — the manager's checkpoint timer keeps the event
	// queue non-empty forever, so Run cannot wait for queue drain).
	mgr         *recovery.Manager
	opts        Options
	ctrlCfg     ftl.ControllerConfig
	outstanding int

	// ager applies lifetime fast-forwards (lazily built by Age so
	// devices that never age pay nothing and replay bit-identically).
	ager *lifetime.Ager
}

// New builds a simulated SSD.
func New(opts Options) (*SSD, error) {
	if opts.Channels <= 0 {
		opts.Channels = opts.Buses // deprecated alias
	}
	if opts.Channels <= 0 {
		opts.Channels = 2
	}
	if opts.DiesPerChannel <= 0 {
		opts.DiesPerChannel = opts.ChipsPerBus // deprecated alias
	}
	if opts.DiesPerChannel <= 0 {
		opts.DiesPerChannel = 4
	}
	if opts.BlocksPerChip <= 0 {
		opts.BlocksPerChip = 64
	}
	if opts.FTL == "" {
		opts.FTL = FTLCube
	}
	rs, err := core.RetrySetupFor(opts.RetryMode)
	if err != nil {
		return nil, err
	}
	eng := sim.NewEngine()
	devCfg := ssd.DefaultConfig()
	devCfg.Channels = opts.Channels
	devCfg.DiesPerChannel = opts.DiesPerChannel
	devCfg.Chip.Process.BlocksPerChip = opts.BlocksPerChip
	devCfg.Seed = opts.Seed
	devCfg.SuspendOps = opts.SuspendOps
	devCfg.PlanesPerChip = opts.PlanesPerChip
	devCfg.Chip.StoreData = opts.VerifyData
	devCfg.Chip.DecodeLatencyNs = rs.DecodeNs
	dev := ssd.New(eng, devCfg)
	faults := nand.FaultConfig{
		ProgramFailRate: opts.ProgramFailRate,
		EraseFailRate:   opts.EraseFailRate,
		ReadFaultRate:   opts.ReadFaultRate,
		FactoryBadRate:  opts.FactoryBadRate,
	}
	if faults.Enabled() {
		dev.SetFaults(faults)
	}
	if opts.PECycles > 0 || opts.RetentionMonths > 0 {
		dev.PreAge(opts.PECycles, opts.RetentionMonths)
		dev.SetReadJitterProb(0.5)
	}

	pol, cube, err := newPolicy(opts, dev)
	if err != nil {
		return nil, err
	}
	ctrlCfg := ftl.DefaultControllerConfig()
	if opts.WriteBufferPages > 0 {
		ctrlCfg.WriteBufferPages = opts.WriteBufferPages
	}
	ctrlCfg.WearAware = opts.WearAware || opts.WearLevel
	ctrlCfg.Refresh = opts.Refresh
	ctrlCfg.WearLevel = opts.WearLevel
	ctrlCfg.VerifyData = opts.VerifyData
	ctrlCfg.DurableAcks = opts.Recovery
	ctrlCfg.RetryMode = rs.Mode
	s := &SSD{
		eng:         eng,
		dev:         dev,
		ctrl:        ftl.NewController(dev, pol, ctrlCfg),
		cube:        cube,
		dieAffinity: opts.DieAffinity,
		opts:        opts,
		ctrlCfg:     ctrlCfg,
	}
	if opts.Recovery {
		s.mgr = recovery.Attach(s.ctrl, recovery.NewSystemArea(), recovery.Options{
			CkptIntervalNs: sim.Time(opts.CkptInterval),
			Ledger:         recovery.NewLedger(),
		})
	}
	return s, nil
}

// newPolicy builds the FTL policy named by opts.FTL against dev (cube
// is non-nil for the cube flavors), applying the retry-mode setup and
// age bucket the options imply. Shared by New and Remount: a recovery
// mount needs a fresh policy instance whose learned state is then
// restored from the checkpoint — including the retry table, whose
// configuration must therefore be rebuilt identically here.
func newPolicy(opts Options, dev *ssd.Device) (ftl.Policy, *core.CubeFTL, error) {
	switch opts.FTL {
	case FTLPage:
		return ftl.NewPagePolicy(), nil, nil
	case FTLVert:
		return ftl.NewVertPolicy(), nil, nil
	case FTLIsp:
		return ftl.NewIspPolicy(func(chip, block int) int {
			return dev.Chip(chip).NAND.PECycles(block)
		}), nil, nil
	case FTLCube, FTLCubeMinus:
		var cube *core.CubeFTL
		if opts.FTL == FTLCubeMinus {
			cube = core.NewMinus(dev.Geometry())
		} else {
			cube = core.New(dev.Geometry())
		}
		rs, err := core.RetrySetupFor(opts.RetryMode)
		if err != nil {
			return nil, nil, err
		}
		cube.ApplyRetrySetup(rs)
		cube.SetAgeBucket(core.AgeBucketFor(opts.RetentionMonths))
		// Key the retry table by each block's own retention age rather
		// than the device-wide bucket. On a fresh or uniformly pre-aged
		// device EffectiveRetentionMonths equals the device-wide setting,
		// so this resolves to the same bucket as SetAgeBucket — replays
		// stay bit-identical — but once Age fast-forwards individual
		// blocks across bucket boundaries the key moves with the block.
		cube.SetAgeBucketFn(func(chip, block int) int {
			return core.AgeBucketFor(dev.Chip(chip).NAND.EffectiveRetentionMonths(block))
		})
		return cube, cube, nil
	}
	return nil, nil, fmt.Errorf("cubeftl: unknown FTL %q", opts.FTL)
}

// Channels returns the device's channel (bus) count.
func (s *SSD) Channels() int { return s.dev.Channels() }

// DiesPerChannel returns the NAND dies behind each channel.
func (s *SSD) DiesPerChannel() int { return s.dev.Config().DiesPerChannel }

// FTLName returns the active FTL's name.
func (s *SSD) FTLName() string { return s.ctrl.Policy().Name() }

// LogicalPages returns the exported capacity in 16 KB pages.
func (s *SSD) LogicalPages() int { return s.ctrl.LogicalPages() }

// CapacityBytes returns the exported logical capacity.
func (s *SSD) CapacityBytes() int64 { return int64(s.ctrl.LogicalPages()) * 16 * 1024 }

// Now returns the current simulated time.
func (s *SSD) Now() time.Duration { return time.Duration(s.eng.Now()) }

// ErrBadLPN reports an out-of-range logical page number. Alias of the
// internal FTL error so errors.Is works across the facade regardless
// of which layer rejected the LPN.
var ErrBadLPN = ftl.ErrBadLPN

// ErrDegraded reports a write rejected because the device has dropped
// to read-only degraded mode (free-block exhaustion from grown bad
// blocks). Reads keep working. Alias of the internal FTL error so
// errors.Is works across the facade.
var ErrDegraded = ftl.ErrDegraded

// Write enqueues a host page write; done (optional) runs in simulated
// time when the write is acknowledged. Call Run to advance the
// simulation. A degraded (read-only) device rejects writes with
// ErrDegraded.
func (s *SSD) Write(lpn int64, done func()) error {
	if lpn < 0 || lpn >= int64(s.ctrl.LogicalPages()) {
		return fmt.Errorf("%w: %d", ErrBadLPN, lpn)
	}
	if done == nil {
		done = func() {}
	}
	inner := done
	s.outstanding++
	err := s.ctrl.Write(ftl.LPN(lpn), func() {
		s.outstanding--
		inner()
	})
	if err != nil {
		s.outstanding--
	}
	return err
}

// Degraded reports whether the whole device has dropped to read-only
// mode (every die degraded).
func (s *SSD) Degraded() bool { return s.ctrl.Degraded() }

// DieDegraded reports whether one die (0 <= die <
// Channels()*DiesPerChannel()) has dropped to read-only. A single dead
// die does not stop the device: writes keep flowing to the survivors.
func (s *SSD) DieDegraded(die int) bool { return s.ctrl.DieDegraded(die) }

// DegradedDieCount returns how many dies have degraded to read-only.
func (s *SSD) DegradedDieCount() int { return s.ctrl.DegradedDieCount() }

// Read enqueues a host page read; done (optional) runs in simulated
// time when data is returned.
func (s *SSD) Read(lpn int64, done func()) error {
	if lpn < 0 || lpn >= int64(s.ctrl.LogicalPages()) {
		return fmt.Errorf("%w: %d", ErrBadLPN, lpn)
	}
	if done == nil {
		done = func() {}
	}
	inner := done
	s.outstanding++
	s.ctrl.Read(ftl.LPN(lpn), func() {
		s.outstanding--
		inner()
	})
	return nil
}

// Run advances the simulation until all queued host I/O has completed.
func (s *SSD) Run() {
	if s.mgr != nil {
		// The recovery manager's checkpoint timer keeps the event queue
		// populated forever, so run by condition, not by queue drain.
		s.eng.RunWhile(func() bool { return s.outstanding > 0 || !s.ctrl.Drained() })
		return
	}
	s.eng.Run()
	s.eng.RunWhile(func() bool { return !s.ctrl.Drained() })
}

// Prefill sequentially writes logical pages [0, n) so subsequent reads
// hit mapped flash and the device reaches steady state. It returns the
// pages actually written: fewer than n if the device degraded to
// read-only (or n exceeded the logical capacity) mid-prefill.
func (s *SSD) Prefill(n int64) int64 {
	return workload.Prefill(s.ctrl, n)
}

// ResetStats clears accumulated measurements (use after Prefill).
func (s *SSD) ResetStats() { s.ctrl.ResetStats() }

// Workloads lists every named workload Run/RunTenants accept: the six
// evaluation streams plus the extended profiles (YCSB-B, YCSB-C, Bulk,
// Mixed).
func Workloads() []string {
	names := make([]string, 0, len(workload.Extended))
	for _, p := range workload.Extended {
		names = append(names, p.Name)
	}
	return names
}

// RunStats summarizes a workload run on the SSD.
type RunStats struct {
	Requests  int64
	Elapsed   time.Duration // simulated
	IOPS      float64
	ReadP50   time.Duration
	ReadP90   time.Duration
	ReadP99   time.Duration
	WriteP50  time.Duration
	WriteP90  time.Duration
	WriteP99  time.Duration
	MeanTPROG time.Duration

	ReadRetries    int64
	GCRuns         int64
	Reprograms     int64
	BufferHits     int64
	DataMismatches int64

	// Fault handling (non-zero only with fault injection enabled).
	ProgramFailures int64
	EraseFailures   int64
	ReadFaults      int64
	RetiredBlocks   int64
	FaultRecoveries int64
	WriteRejects    int64
	DegradedDies    int64
	FencedPrograms  int64

	// TraceHash fingerprints the host dispatch grant sequence: equal
	// hashes across two runs mean bit-identical replay.
	TraceHash uint64
}

// RunWorkload drives one of the named workloads (see Workloads) against
// the SSD for the given number of requests at the given queue depth.
func (s *SSD) RunWorkload(name string, requests, queueDepth int) (RunStats, error) {
	prof, ok := workload.ByName(name)
	if !ok {
		return RunStats{}, fmt.Errorf("cubeftl: unknown workload %q (have %v)", name, Workloads())
	}
	gen := workload.NewStream(prof, s.ctrl.LogicalPages(), s.dev.Config().Seed+0xABCD)
	res := workload.Run(s.ctrl, gen, workload.RunConfig{Requests: requests, QueueDepth: queueDepth})
	st := s.ctrl.Stats()
	return RunStats{
		Requests:       res.Requests,
		Elapsed:        time.Duration(res.ElapsedNs),
		IOPS:           res.IOPS(),
		ReadP50:        time.Duration(res.ReadLat.Percentile(50)),
		ReadP90:        time.Duration(res.ReadLat.Percentile(90)),
		ReadP99:        time.Duration(res.ReadLat.Percentile(99)),
		WriteP50:       time.Duration(res.WriteLat.Percentile(50)),
		WriteP90:       time.Duration(res.WriteLat.Percentile(90)),
		WriteP99:       time.Duration(res.WriteLat.Percentile(99)),
		MeanTPROG:      time.Duration(st.MeanTPROGNs()),
		ReadRetries:    st.ReadRetries,
		GCRuns:         st.GCCount,
		Reprograms:     st.Reprograms,
		BufferHits:     st.BufferHits,
		DataMismatches: st.DataMismatches,

		ProgramFailures: st.ProgramFailures,
		EraseFailures:   st.EraseFailures,
		ReadFaults:      st.ReadFaults,
		RetiredBlocks:   st.RetiredBlocks,
		FaultRecoveries: st.FaultRecoveries,
		WriteRejects:    st.WriteRejects,
		DegradedDies:    st.DegradedDies,
		FencedPrograms:  st.FencedPrograms,
		TraceHash:       res.TraceHash,
	}, nil
}

// Arbitration policy names accepted by RunTenants.
const (
	ArbRR   = "rr"   // round-robin
	ArbWRR  = "wrr"  // weighted round-robin over TenantConfig.Weight
	ArbPrio = "prio" // strict priority with a starvation guard
)

// DefaultStarvationGuard bounds how long a low-priority queue's head
// command can wait under the "prio" arbiter before it is served ahead
// of higher-priority queues.
const DefaultStarvationGuard = 2 * time.Millisecond

// TenantConfig describes one tenant stream of a multi-tenant run: a
// named workload driven closed-loop through its own NVMe-style
// submission/completion queue pair.
type TenantConfig struct {
	Name     string // defaults to Workload
	Workload string // one of Workloads()
	Requests int    // requests to complete (default 10000)
	// QueueDepth bounds the tenant's outstanding commands (admission
	// control; default 16).
	QueueDepth int
	// Weight is the WRR share (>= 1; "wrr" arbiter).
	Weight int
	// Priority is the strict-priority class; higher is more urgent
	// ("prio" arbiter).
	Priority int
	// RateIOPS token-bucket rate limits the tenant; 0 = unlimited.
	RateIOPS float64
}

// TenantRunStats is one tenant's view of a multi-tenant run. Latencies
// are host-visible: submission-queue wait plus device service.
type TenantRunStats struct {
	Name     string
	Requests int64
	Elapsed  time.Duration
	IOPS     float64

	ReadP50, ReadP99, ReadP999    time.Duration
	WriteP50, WriteP99, WriteP999 time.Duration

	// QueueFulls counts submissions bounced by admission control,
	// Throttles rate-limiter stalls, Rejects degraded-device write
	// rejections, Grants arbitration wins.
	QueueFulls  int64
	Throttles   int64
	Rejects     int64
	Grants      int64
	MaxHeadWait time.Duration
}

// MultiTenantStats summarizes a multi-tenant run.
type MultiTenantStats struct {
	Tenants []TenantRunStats
	Elapsed time.Duration
	// TraceHash fingerprints the arbitration grant sequence — equal
	// hashes mean bit-identical scheduling for a fixed seed.
	TraceHash uint64
	Grants    int64
	// Aggregate percentiles across every tenant (merged histograms).
	AggReadP99  time.Duration
	AggWriteP99 time.Duration
}

// RunTenants drives the tenant streams concurrently through an
// NVMe-style multi-queue host front end feeding the FTL, arbitrated by
// arb (ArbRR, ArbWRR or ArbPrio). dispatchWidth bounds commands
// concurrently outstanding at the device across all tenants — the
// contended resource QoS divides; 0 defaults to the sum of queue
// depths.
func (s *SSD) RunTenants(tenants []TenantConfig, arb string, dispatchWidth int) (MultiTenantStats, error) {
	if len(tenants) == 0 {
		return MultiTenantStats{}, fmt.Errorf("cubeftl: no tenants")
	}
	arbiter, err := host.NewArbiter(arb, int64(DefaultStarvationGuard))
	if err != nil {
		return MultiTenantStats{}, err
	}
	specs := make([]workload.TenantSpec, 0, len(tenants))
	for i, tc := range tenants {
		prof, ok := workload.ByName(tc.Workload)
		if !ok {
			return MultiTenantStats{}, fmt.Errorf("cubeftl: unknown workload %q (have %v)", tc.Workload, Workloads())
		}
		name := tc.Name
		if name == "" {
			name = prof.Name
		}
		requests := tc.Requests
		if requests <= 0 {
			requests = 10000
		}
		depth := tc.QueueDepth
		if depth <= 0 {
			depth = 16
		}
		seed := s.dev.Config().Seed + 0xABCD + uint64(i)*0x9E3779B9
		specs = append(specs, workload.TenantSpec{
			Gen:      workload.NewStream(prof, s.ctrl.LogicalPages(), seed),
			Requests: requests,
			Queue: host.QueueConfig{
				Tenant:   name,
				Depth:    depth,
				Weight:   tc.Weight,
				Priority: tc.Priority,
				RateIOPS: tc.RateIOPS,
			},
		})
	}
	mr, err := workload.RunTenants(s.ctrl, specs, workload.MultiRunConfig{
		Arbiter:       arbiter,
		DispatchWidth: dispatchWidth,
		DieAffinity:   s.dieAffinity,
	})
	if err != nil {
		return MultiTenantStats{}, err
	}
	out := MultiTenantStats{
		Elapsed:   time.Duration(mr.ElapsedNs),
		TraceHash: mr.TraceHash,
		Grants:    mr.Grants,
	}
	for _, tr := range mr.Tenants {
		out.Tenants = append(out.Tenants, TenantRunStats{
			Name:        tr.Name,
			Requests:    tr.Requests,
			Elapsed:     time.Duration(tr.ElapsedNs),
			IOPS:        tr.IOPS(),
			ReadP50:     time.Duration(tr.ReadLat.Percentile(50)),
			ReadP99:     time.Duration(tr.ReadLat.Percentile(99)),
			ReadP999:    time.Duration(tr.ReadLat.Percentile(99.9)),
			WriteP50:    time.Duration(tr.WriteLat.Percentile(50)),
			WriteP99:    time.Duration(tr.WriteLat.Percentile(99)),
			WriteP999:   time.Duration(tr.WriteLat.Percentile(99.9)),
			QueueFulls:  tr.QueueFulls,
			Throttles:   tr.Throttles,
			Rejects:     tr.Rejects,
			Grants:      tr.Grants,
			MaxHeadWait: time.Duration(tr.MaxHeadWaitNs),
		})
	}
	aggR, aggW := mr.Aggregate()
	out.AggReadP99 = time.Duration(aggR.Percentile(99))
	out.AggWriteP99 = time.Duration(aggW.Percentile(99))
	return out, nil
}

// CubeStats reports the PS-aware decision counters when the SSD runs a
// cube flavor (zero value otherwise).
type CubeStats struct {
	LeaderPrograms   int64
	FollowerPrograms int64
	SafetyRejects    int64
	ORTHits          int64
	ORTMisses        int64
	ORTBytes         int64

	// Retry-table counters (DESIGN.md §15; zero unless the retry table
	// is enabled via Options.RetryMode "ort-pr"/"ort-pr-ar").
	RetryHits    int64 // fresh retry-table entries served
	RetryStale   int64 // entries expired by decay on lookup
	RetryMisses  int64 // lookups that fell through to the ORT
	RetryEntries int64 // live entries right now
}

// Cube returns the PS-aware counters (meaningful for cube flavors).
func (s *SSD) Cube() CubeStats {
	if s.cube == nil {
		return CubeStats{}
	}
	cs := s.cube.CubeStats()
	return CubeStats{
		LeaderPrograms:   cs.LeaderPrograms,
		FollowerPrograms: cs.FollowerPrograms,
		SafetyRejects:    cs.SafetyRejects,
		ORTHits:          cs.ORTHits,
		ORTMisses:        cs.ORTMisses,
		ORTBytes:         s.cube.ORTBytes(),
		RetryHits:        cs.RetryHits,
		RetryStale:       cs.RetryStale,
		RetryMisses:      cs.RetryMisses,
		RetryEntries:     int64(s.cube.RetryEntries()),
	}
}

// TelemetryConfig configures the observability layer (DESIGN.md §11).
// The zero value enables metrics, stage attribution, and the sampler
// hook but not span/event tracing.
type TelemetryConfig struct {
	// Trace collects per-IO spans and device operation events for Chrome
	// trace_event export (WriteChromeTrace → Perfetto).
	Trace bool
	// TraceRing bounds the most-recent-spans ring (default 4096).
	TraceRing int
	// TraceReservoir sizes the uniform reservoir kept over spans evicted
	// from the ring, so long runs retain a representative sample beyond
	// the tail. Default 4096; negative disables the reservoir.
	TraceReservoir int
	// SpanSample traces one in every SpanSample host commands (and the
	// matching fraction of device op events); 0 or 1 traces everything.
	// The sample is systematic with a seed-derived phase, so fixed-seed
	// replays trace the exact same commands, and the simulation itself
	// is untouched (same IOPS, same TraceHash) — see DESIGN.md §16.
	SpanSample int
}

// EnableTelemetry turns on the observability layer: the central metrics
// registry, per-IO stage-latency attribution, and (optionally) span
// tracing. Telemetry is passive and keyed to simulated time — enabling
// it does not change what a run computes (same TraceHash, same stats).
// Call before driving I/O; enabling mid-run only misses early IOs.
func (s *SSD) EnableTelemetry(cfg TelemetryConfig) {
	hub := telemetry.NewHub(s.eng, s.dev.Config().Seed)
	if cfg.Trace {
		hub.EnableTracer(telemetry.TracerConfig{
			RingSize:      cfg.TraceRing,
			ReservoirSize: cfg.TraceReservoir,
		})
	}
	hub.SetSpanSample(cfg.SpanSample)
	s.ctrl.SetTelemetry(hub)
	s.registerFacadeGauges(hub)
	s.hub = hub
}

// TelemetryEnabled reports whether EnableTelemetry has been called.
func (s *SSD) TelemetryEnabled() bool { return s.hub != nil }

// Telemetry returns the underlying hub (nil when telemetry is off) for
// direct registry/stage access.
func (s *SSD) Telemetry() *telemetry.Hub { return s.hub }

// registerFacadeGauges exposes the controller's aggregate stats through
// the registry so JSONL snapshots carry them without reaching into the
// internal structs.
func (s *SSD) registerFacadeGauges(hub *telemetry.Hub) {
	st := s.ctrl.Stats() // stable pointer; ResetStats zeroes in place
	reg := hub.Registry()
	reg.RegisterGauge("ftl/write_amp", func() float64 {
		if st.HostWrites == 0 {
			return 0
		}
		return float64(st.Programs*int64(vth.PagesPerWL)) / float64(st.HostWrites)
	})
	// Per-cause write-amplification ledger (DESIGN.md §17): where every
	// physical program came from, plus the resulting factor.
	reg.RegisterGauge("ftl/waf/factor", func() float64 { return s.ctrl.WAF().Factor() })
	for name, get := range map[string]func(lifetime.WAF) int64{
		"ftl/waf/host_bytes":    lifetime.WAF.HostBytes,
		"ftl/waf/gc_bytes":      lifetime.WAF.GCBytes,
		"ftl/waf/refresh_bytes": lifetime.WAF.RefreshBytes,
		"ftl/waf/wl_bytes":      lifetime.WAF.WLBytes,
	} {
		g := get
		reg.RegisterGauge(name, func() float64 { return float64(g(s.ctrl.WAF())) })
	}
	for name, src := range map[string]*int64{
		"ftl/gc/runs":           &st.GCCount,
		"ftl/gc/page_moves":     &st.GCPageMoves,
		"ftl/refreshes":         &st.Refreshes,
		"ftl/wear_levels":       &st.WearLevels,
		"ftl/reprograms":        &st.Reprograms,
		"ftl/buffer_hits":       &st.BufferHits,
		"ftl/write_rejects":     &st.WriteRejects,
		"ftl/degraded_dies":     &st.DegradedDies,
		"ftl/fenced_programs":   &st.FencedPrograms,
		"nand/read_retries":     &st.ReadRetries,
		"faults/program_fail":   &st.ProgramFailures,
		"faults/erase_fail":     &st.EraseFailures,
		"faults/read_faults":    &st.ReadFaults,
		"faults/retired_blocks": &st.RetiredBlocks,
		"faults/recoveries":     &st.FaultRecoveries,
	} {
		p := src
		reg.RegisterGauge(name, func() float64 { return float64(*p) })
	}
	// Cube-flavor decision counters (all zero on non-cube FTLs): the
	// ORT and per-(block,layer) retry-table hit/stale/miss rates are
	// the health signals DESIGN.md §15 steers on.
	for name, get := range map[string]func(CubeStats) int64{
		"cube/ort/hits":      func(c CubeStats) int64 { return c.ORTHits },
		"cube/ort/misses":    func(c CubeStats) int64 { return c.ORTMisses },
		"cube/retry/hits":    func(c CubeStats) int64 { return c.RetryHits },
		"cube/retry/stale":   func(c CubeStats) int64 { return c.RetryStale },
		"cube/retry/misses":  func(c CubeStats) int64 { return c.RetryMisses },
		"cube/retry/entries": func(c CubeStats) int64 { return c.RetryEntries },
	} {
		g := get
		reg.RegisterGauge(name, func() float64 { return float64(g(s.Cube())) })
	}
}

// ErrTelemetryOff reports a telemetry API called before EnableTelemetry.
var ErrTelemetryOff = errors.New("cubeftl: telemetry not enabled")

// WriteChromeTrace exports the collected spans and device operation
// events as Chrome trace_event JSON (chrome://tracing, Perfetto).
// Requires EnableTelemetry with Trace: true.
func (s *SSD) WriteChromeTrace(w io.Writer) error {
	if s.hub == nil || s.hub.Tracer() == nil {
		return fmt.Errorf("%w: need TelemetryConfig.Trace", ErrTelemetryOff)
	}
	dies := s.dev.Channels() * s.dev.Config().DiesPerChannel
	return telemetry.WriteChromeTrace(w, s.hub.Tracer(), s.hub.QueueNames(), dies)
}

// StartStats begins emitting one JSONL telemetry snapshot to w per
// interval of simulated time (tenant IOPS/p99s, per-die utilization,
// registry metrics). Close the returned sampler via CloseStats after
// the run to flush the final snapshot.
func (s *SSD) StartStats(w io.Writer, interval time.Duration) error {
	if s.hub == nil {
		return ErrTelemetryOff
	}
	if interval <= 0 {
		interval = time.Millisecond
	}
	s.sampler = s.hub.StartSampler(w, int64(interval))
	return nil
}

// CloseStats writes the final snapshot and flushes the stats sink.
func (s *SSD) CloseStats() error {
	if s.sampler == nil {
		return ErrTelemetryOff
	}
	err := s.sampler.Close()
	s.sampler = nil
	return err
}

// BreakdownTable renders the per-scope stage-latency attribution: for
// each tenant/op (and each die's reads), where the p50/p99/mean latency
// was spent — queue wait, plane wait, NAND time, retries, bus. Empty
// string when telemetry is off or no spans completed.
func (s *SSD) BreakdownTable() string {
	if s.hub == nil {
		return ""
	}
	return s.hub.Stages().FormatBreakdown()
}

// KillDie installs certain-failure fault injection on one die's
// programs and erases, driving it to degraded read-only mode as soon as
// its free-block margin runs out — the chaos scenario behind `make
// trace-demo`. Reads keep working.
func (s *SSD) KillDie(die int) error {
	dies := s.dev.Channels() * s.dev.Config().DiesPerChannel
	if die < 0 || die >= dies {
		return fmt.Errorf("cubeftl: die %d out of range (have %d)", die, dies)
	}
	s.dev.SetChipFaults(die, nand.FaultConfig{ProgramFailRate: 1, EraseFailRate: 1})
	return nil
}
