module cubeftl

go 1.22
