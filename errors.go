package cubeftl

// Client-visible error taxonomy. Every condition the device or its
// multi-queue front end can reject on is exported here as an
// errors.Is-able sentinel aliased to the internal definition, so a
// caller holding only the facade can discriminate errors produced
// anywhere in the stack. IsRetryable/IsTerminal encode the retry
// contract the block server's status codes are derived from
// (DESIGN.md §13).

import (
	"errors"

	"cubeftl/internal/ftl"
	"cubeftl/internal/host"
	"cubeftl/internal/ssd"
)

// Aliases of the internal typed errors. Each is the same error value
// the internal package returns (not a copy), so errors.Is works across
// the facade boundary in both directions.
var (
	// ErrQueueFull reports a submission refused because the tenant's
	// queue pair is at its configured depth — admission-control
	// backpressure. Retry after a completion frees a slot.
	ErrQueueFull = host.ErrQueueFull

	// ErrBadQueue reports a submission to a queue index that does not
	// exist on this front end.
	ErrBadQueue = host.ErrBadQueue

	// ErrDieFenced reports a program that reached a die after it
	// degraded to read-only. The FTL requeues such writes to healthy
	// dies, so a client seeing this transiently should retry.
	ErrDieFenced = ssd.ErrDieFenced
)

// Retryable classifies err as transient: the same request can succeed
// if re-issued after backoff (queue-full admission rejections, programs
// bounced off a freshly-fenced die while the FTL re-routes). False for
// unknown errors — the client must not spin on conditions this layer
// cannot vouch for.
func Retryable(err error) bool {
	return errors.Is(err, host.ErrQueueFull) || errors.Is(err, ssd.ErrDieFenced)
}

// Terminal classifies err as permanent for the issuing client: retrying
// the identical request cannot succeed (out-of-range LPN, nonexistent
// queue, a device-wide read-only degrade, configuration errors). False
// for unknown errors.
func Terminal(err error) bool {
	return errors.Is(err, ftl.ErrBadLPN) || errors.Is(err, ErrBadLPN) ||
		errors.Is(err, host.ErrBadQueue) || errors.Is(err, ftl.ErrDegraded) ||
		errors.Is(err, host.ErrUnknownArbiter) || errors.Is(err, host.ErrNoQueues)
}
