// Observability wiring for cubesim: Chrome trace export, periodic JSONL
// telemetry snapshots, per-stage latency attribution, and Go profiling
// hooks (-cpuprofile/-memprofile/-pprof-addr).
package main

import (
	"fmt"
	"os"
	"time"

	"cubeftl"
	"cubeftl/internal/obs"
)

// obsConfig collects the observability and profiling flag values.
type obsConfig struct {
	traceOut      string
	statsOut      string
	statsInterval time.Duration
	breakdown     bool
	killDie       int
	profile       obs.ProfileConfig

	statsFile *os.File
}

// telemetryWanted reports whether any telemetry sink was requested.
func (o *obsConfig) telemetryWanted() bool {
	return o.traceOut != "" || o.statsOut != "" || o.breakdown
}

// startProfiling begins CPU profiling and the pprof HTTP listener.
// Call stopProfiling at exit.
func (o *obsConfig) startProfiling() error { return o.profile.Start() }

// stopProfiling flushes the CPU profile and writes the heap profile.
func (o *obsConfig) stopProfiling() error { return o.profile.Stop() }

// startTelemetry enables the telemetry layer on dev per the flags (after
// prefill/ResetStats so measurements cover only the measured run) and
// opens the stats sink. Call finishTelemetry after the run.
func (o *obsConfig) startTelemetry(dev *cubeftl.SSD) error {
	if o.killDie >= 0 {
		if err := dev.KillDie(o.killDie); err != nil {
			return err
		}
		fmt.Printf("chaos: die %d set to fail all programs and erases\n", o.killDie)
	}
	if !o.telemetryWanted() {
		return nil
	}
	dev.EnableTelemetry(cubeftl.TelemetryConfig{Trace: o.traceOut != ""})
	if o.statsOut != "" {
		f, err := os.Create(o.statsOut)
		if err != nil {
			return err
		}
		if err := dev.StartStats(f, o.statsInterval); err != nil {
			f.Close()
			return err
		}
		o.statsFile = f
	}
	return nil
}

// finishTelemetry drains the telemetry sinks: final stats snapshot,
// Chrome trace file, and the stage-attribution table.
func (o *obsConfig) finishTelemetry(dev *cubeftl.SSD) error {
	if o.statsFile != nil {
		if err := dev.CloseStats(); err != nil {
			return err
		}
		if err := o.statsFile.Close(); err != nil {
			return err
		}
		o.statsFile = nil
		fmt.Printf("stats: wrote %s (one JSON object per %v of simulated time)\n",
			o.statsOut, o.statsInterval)
	}
	if o.traceOut != "" {
		f, err := os.Create(o.traceOut)
		if err != nil {
			return err
		}
		if err := dev.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("trace: wrote %s (open in https://ui.perfetto.dev or chrome://tracing)\n", o.traceOut)
	}
	if o.breakdown {
		if table := dev.BreakdownTable(); table != "" {
			fmt.Printf("\nstage-latency attribution (where the time went):\n%s", table)
		}
	}
	return nil
}
