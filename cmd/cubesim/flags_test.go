package main

import (
	"strings"
	"testing"
	"time"
)

func TestValidateTopology(t *testing.T) {
	if err := validateTopology(2, 4); err != nil {
		t.Fatalf("valid topology rejected: %v", err)
	}
	for _, tc := range []struct {
		channels, dies int
		wantFlag       string
	}{
		{0, 4, "-channels"},
		{-1, 4, "-channels"},
		{2, 0, "-dies"},
		{2, -3, "-dies"},
	} {
		err := validateTopology(tc.channels, tc.dies)
		if err == nil {
			t.Fatalf("topology %dx%d accepted", tc.channels, tc.dies)
		}
		if !strings.Contains(err.Error(), tc.wantFlag) {
			t.Errorf("topology %dx%d error %q does not name %s",
				tc.channels, tc.dies, err, tc.wantFlag)
		}
	}
}

func TestValidateRetryMode(t *testing.T) {
	for _, ok := range []string{"", "baseline", "ort", "ort-pr", "ort-pr-ar"} {
		if err := validateRetryMode(ok); err != nil {
			t.Errorf("mode %q rejected: %v", ok, err)
		}
	}
	err := validateRetryMode("turbo")
	if err == nil {
		t.Fatal("mode \"turbo\" accepted")
	}
	if !strings.Contains(err.Error(), "-retry-mode") || !strings.Contains(err.Error(), "ort-pr-ar") {
		t.Errorf("error %q does not name the flag and the accepted modes", err)
	}
}

func TestParseTenants(t *testing.T) {
	tenants, err := parseTenants("db=OLTP, web=Web ,Rocks", 500, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(tenants) != 3 {
		t.Fatalf("tenants = %d", len(tenants))
	}
	if tenants[0].Name != "db" || tenants[0].Workload != "OLTP" {
		t.Errorf("tenant 0 = %+v", tenants[0])
	}
	if tenants[1].Workload != "Web" {
		t.Errorf("tenant 1 = %+v", tenants[1])
	}
	if tenants[2].Name != "" || tenants[2].Workload != "Rocks" {
		t.Errorf("tenant 2 = %+v", tenants[2])
	}
	if tenants[0].Requests != 500 || tenants[0].QueueDepth != 8 {
		t.Errorf("tenant 0 run shape = %+v", tenants[0])
	}
	if _, err := parseTenants(" , ", 500, 8); err == nil {
		t.Error("empty -queues spec accepted")
	}
}

func TestSplitListDefaultsAndValues(t *testing.T) {
	vals, err := splitList("-weights", "", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 3 || vals[0] != 0 || vals[2] != 0 {
		t.Errorf("empty spec = %v", vals)
	}
	vals, err = splitList("-weights", "8,,1", 3)
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] != 8 || vals[1] != 0 || vals[2] != 1 {
		t.Errorf("values = %v", vals)
	}
}

func TestSplitListErrorsNameFlagAndCount(t *testing.T) {
	for _, flagName := range []string{"-weights", "-prios", "-rate"} {
		_, err := splitList(flagName, "1,2,3", 2)
		if err == nil {
			t.Fatalf("%s: length mismatch accepted", flagName)
		}
		msg := err.Error()
		if !strings.Contains(msg, flagName) {
			t.Errorf("%s mismatch error %q does not name the flag", flagName, msg)
		}
		if !strings.Contains(msg, "got 3") || !strings.Contains(msg, "want 2") {
			t.Errorf("%s mismatch error %q does not state got/want counts", flagName, msg)
		}
	}
	_, err := splitList("-rate", "1,abc", 2)
	if err == nil {
		t.Fatal("non-numeric value accepted")
	}
	if !strings.Contains(err.Error(), "-rate") || !strings.Contains(err.Error(), "abc") {
		t.Errorf("bad-value error %q lacks flag name or offending token", err)
	}
}

func TestParsePowercut(t *testing.T) {
	pc, err := parsePowercut("")
	if err != nil || pc.mode != pcOff {
		t.Fatalf("empty spec = %+v, %v", pc, err)
	}
	pc, err = parsePowercut("random")
	if err != nil || pc.mode != pcRandom {
		t.Fatalf("random spec = %+v, %v", pc, err)
	}
	pc, err = parsePowercut(" 5ms ")
	if err != nil || pc.mode != pcAt || pc.at != 5*time.Millisecond {
		t.Fatalf("duration spec = %+v, %v", pc, err)
	}
	for _, bad := range []string{"soon", "5", "-2ms", "0s"} {
		if _, err := parsePowercut(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		} else if !strings.Contains(err.Error(), "-powercut") {
			t.Errorf("spec %q error %q does not name -powercut", bad, err)
		}
	}
}

func TestParseAge(t *testing.T) {
	for _, tc := range []struct {
		spec string
		want float64
	}{
		{"", 0},
		{"3y", 36},
		{"2.5y", 30},
		{"18mo", 18},
		{" 1mo ", 1},
		{"730h", 1},
	} {
		got, err := parseAge(tc.spec)
		if err != nil {
			t.Errorf("parseAge(%q): %v", tc.spec, err)
			continue
		}
		if got != tc.want {
			t.Errorf("parseAge(%q) = %v, want %v", tc.spec, got, tc.want)
		}
	}
	for _, bad := range []string{"soon", "3", "-1y", "0mo", "xy", "-5ms"} {
		if _, err := parseAge(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		} else if !strings.Contains(err.Error(), "-age") {
			t.Errorf("spec %q error %q does not name -age", bad, err)
		}
	}
}

func TestValidateRecoveryFlags(t *testing.T) {
	cut := powercutSpec{mode: pcAt, at: time.Millisecond}
	if err := validateRecoveryFlags(cut, "", "", ""); err != nil {
		t.Fatalf("plain power cut rejected: %v", err)
	}
	// Without a cut, any combination passes (the flags are inert).
	if err := validateRecoveryFlags(powercutSpec{}, "db=OLTP", "t.trace", "out"); err != nil {
		t.Fatalf("inert flags rejected: %v", err)
	}
	for _, tc := range []struct {
		queues, trace, record string
		wantFlag              string
	}{
		{"db=OLTP", "", "", "-queues"},
		{"", "run.trace", "", "-trace"},
		{"", "", "out.trace", "-record"},
	} {
		err := validateRecoveryFlags(cut, tc.queues, tc.trace, tc.record)
		if err == nil {
			t.Fatalf("combo %+v accepted", tc)
		}
		if !strings.Contains(err.Error(), tc.wantFlag) {
			t.Errorf("combo error %q does not name %s", err, tc.wantFlag)
		}
	}
}
