// Command cubesim runs one of the paper's evaluation workloads against
// a simulated SSD under a chosen FTL and reports throughput, latency
// percentiles, and PS-aware decision counters.
//
// Usage:
//
//	cubesim -ftl cube -workload OLTP -requests 20000
//	cubesim -ftl page -workload Rocks -pe 2000 -retention 12
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cubeftl"
)

func main() {
	ftlName := flag.String("ftl", cubeftl.FTLCube, "FTL flavor: page, vert, cube, cube-")
	wl := flag.String("workload", "OLTP", "workload: "+strings.Join(cubeftl.Workloads(), ", "))
	requests := flag.Int("requests", 20000, "host requests to complete")
	qd := flag.Int("qd", 24, "host queue depth")
	blocks := flag.Int("blocks", 32, "blocks per chip (428 = paper's full chip)")
	seed := flag.Uint64("seed", 1, "random seed")
	pe := flag.Int("pe", 0, "pre-aged P/E cycles (paper: 0 or 2000)")
	retention := flag.Float64("retention", 0, "pinned retention age in months (paper: 0, 1 or 12)")
	prefill := flag.Bool("prefill", true, "prefill the workload footprint before measuring")
	tracePath := flag.String("trace", "", "replay a recorded trace file instead of a synthetic workload")
	pfail := flag.Float64("pfail", 0, "program-status failure rate per word-line program")
	efail := flag.Float64("efail", 0, "erase failure rate per block erase (grows bad blocks)")
	rfault := flag.Float64("rfault", 0, "transient read fault rate per page read")
	badblocks := flag.Float64("badblocks", 0, "fraction of blocks factory-marked bad at boot")
	record := flag.String("record", "", "record the workload to a trace file and exit")
	flag.Parse()

	opts := cubeftl.Options{
		FTL:             *ftlName,
		BlocksPerChip:   *blocks,
		Seed:            *seed,
		PECycles:        *pe,
		RetentionMonths: *retention,
		ProgramFailRate: *pfail,
		EraseFailRate:   *efail,
		ReadFaultRate:   *rfault,
		FactoryBadRate:  *badblocks,
	}
	dev, err := cubeftl.New(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *record != "" {
		f, err := os.Create(*record)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := cubeftl.RecordTrace(f, *wl, dev.LogicalPages(), *requests, *seed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("recorded %d %s requests to %s\n", *requests, *wl, *record)
		return
	}
	fmt.Printf("device: %s, %.1f GiB logical, seed %d, aging {P/E %d, %v months}\n",
		dev.FTLName(), float64(dev.CapacityBytes())/(1<<30), *seed, *pe, *retention)

	if *prefill {
		n := int64(dev.LogicalPages()) * 6 / 10
		fmt.Printf("prefilling %d pages...\n", n)
		dev.Prefill(n)
		dev.ResetStats()
	}

	var st cubeftl.RunStats
	label := *wl
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		st, err = dev.RunTrace(f, *tracePath, *requests, *qd)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		label = *tracePath
	} else {
		st, err = dev.RunWorkload(*wl, *requests, *qd)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	fmt.Printf("\n%s on %s: %d requests in %v simulated\n", label, dev.FTLName(), st.Requests, st.Elapsed)
	fmt.Printf("  IOPS        %.0f\n", st.IOPS)
	fmt.Printf("  read  p50/p90/p99   %v / %v / %v\n", st.ReadP50, st.ReadP90, st.ReadP99)
	fmt.Printf("  write p50/p90/p99   %v / %v / %v\n", st.WriteP50, st.WriteP90, st.WriteP99)
	fmt.Printf("  mean tPROG  %v\n", st.MeanTPROG)
	fmt.Printf("  read retries %d, GC runs %d, reprograms %d, buffer hits %d\n",
		st.ReadRetries, st.GCRuns, st.Reprograms, st.BufferHits)
	if st.ProgramFailures+st.EraseFailures+st.ReadFaults+st.RetiredBlocks+st.WriteRejects > 0 {
		fmt.Printf("  faults: %d program fails, %d erase fails, %d read faults, %d retired blocks, %d recoveries, %d rejected writes\n",
			st.ProgramFailures, st.EraseFailures, st.ReadFaults, st.RetiredBlocks, st.FaultRecoveries, st.WriteRejects)
		if dev.Degraded() {
			fmt.Println("  DEVICE DEGRADED: read-only (free blocks exhausted)")
		}
	}
	if cs := dev.Cube(); cs.LeaderPrograms+cs.FollowerPrograms > 0 {
		fmt.Printf("  PS-aware: %d leaders, %d followers, %d safety rejects, ORT %d hits / %d misses (%d bytes)\n",
			cs.LeaderPrograms, cs.FollowerPrograms, cs.SafetyRejects, cs.ORTHits, cs.ORTMisses, cs.ORTBytes)
	}
}
