// Command cubesim runs one of the paper's evaluation workloads against
// a simulated SSD under a chosen FTL and reports throughput, latency
// percentiles, and PS-aware decision counters.
//
// Usage:
//
//	cubesim -ftl cube -workload OLTP -requests 20000
//	cubesim -ftl page -workload Rocks -pe 2000 -retention 12
//
// Multi-tenant mode drives several named streams through the
// NVMe-style multi-queue host interface with QoS arbitration:
//
//	cubesim -queues "db=OLTP,web=Web" -arb wrr -weights 1,8 -requests 8000
//	cubesim -queues "bulk=Rocks,hot=Web" -arb prio -prios 0,5 -rate 20000,0
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cubeftl"
	"cubeftl/internal/rng"
)

func main() {
	ftlName := flag.String("ftl", cubeftl.FTLCube, "FTL flavor: page, vert, cube, cube-")
	wl := flag.String("workload", "OLTP", "workload: "+strings.Join(cubeftl.Workloads(), ", "))
	requests := flag.Int("requests", 20000, "host requests to complete")
	qd := flag.Int("qd", 24, "host queue depth")
	channels := flag.Int("channels", 2, "independent NAND channels (data buses)")
	dies := flag.Int("dies", 4, "NAND dies behind each channel")
	dieaware := flag.Bool("dieaware", false, "die-aware dispatch: prefer queue heads targeting idle dies (multi-tenant mode)")
	blocks := flag.Int("blocks", 32, "blocks per chip (428 = paper's full chip)")
	seed := flag.Uint64("seed", 1, "random seed")
	pe := flag.Int("pe", 0, "pre-aged P/E cycles (paper: 0 or 2000)")
	retention := flag.Float64("retention", 0, "pinned retention age in months (paper: 0, 1 or 12)")
	retryMode := flag.String("retry-mode", "", "read-retry stack: baseline (no offset caches), ort (default; the paper's flow), ort-pr (pipelined sense/decode + retry table), ort-pr-ar (ort-pr + adaptive sense termination)")
	prefill := flag.Bool("prefill", true, "prefill the workload footprint before measuring")
	tracePath := flag.String("trace", "", "replay a recorded trace file instead of a synthetic workload")
	pfail := flag.Float64("pfail", 0, "program-status failure rate per word-line program")
	efail := flag.Float64("efail", 0, "erase failure rate per block erase (grows bad blocks)")
	rfault := flag.Float64("rfault", 0, "transient read fault rate per page read")
	badblocks := flag.Float64("badblocks", 0, "fraction of blocks factory-marked bad at boot")
	record := flag.String("record", "", "record the workload to a trace file and exit")
	queues := flag.String("queues", "", "multi-tenant mode: comma-separated tenant streams, each 'workload' or 'name=workload' (e.g. 'db=OLTP,web=Web')")
	arb := flag.String("arb", "rr", "queue arbitration: rr, wrr, prio")
	weights := flag.String("weights", "", "per-tenant WRR weights, comma-separated (e.g. '8,1')")
	rate := flag.String("rate", "", "per-tenant IOPS caps, comma-separated; 0 = unlimited (e.g. '0,20000')")
	prios := flag.String("prios", "", "per-tenant strict-priority classes, comma-separated; higher = more urgent")
	width := flag.Int("width", 32, "device dispatch width shared by all tenant queues (multi-tenant mode)")
	ageSpec := flag.String("age", "", "lifetime fast-forward applied after prefill: years ('3y'), months ('18mo'), or a duration; deterministically ages wear, retention, and bad blocks from -seed")
	refresh := flag.Bool("refresh", false, "retention-aware background scrubber: rewrite blocks before the ECC cliff, yielding to host traffic")
	wearlevel := flag.Bool("wearlevel", false, "cross-block static wear leveling (implies wear-aware allocation)")
	wafOut := flag.String("waf-out", "", "write the per-cause write-amplification ledger and erase-count quantiles to this JSON file after the run")
	powercut := flag.String("powercut", "", "crash test: cut power mid-run at a simulated duration into the run (e.g. 5ms) or at a seed-derived 'random' point, then recover by remounting")
	ckptInterval := flag.Duration("ckpt-interval", 0, "recovery checkpoint cadence in simulated time (0 = 20ms default, negative disables periodic checkpoints; effective with -powercut)")
	verifyMount := flag.Bool("verify-mount", true, "after a -powercut remount, run the full-device consistency verifier (zero lost acked writes)")
	obs := obsConfig{}
	flag.StringVar(&obs.traceOut, "trace-out", "", "write a Chrome trace_event JSON file of the run (open in Perfetto)")
	flag.StringVar(&obs.statsOut, "stats-out", "", "write periodic JSONL telemetry snapshots to this file")
	flag.DurationVar(&obs.statsInterval, "stats-interval", time.Millisecond, "simulated time between -stats-out snapshots")
	flag.BoolVar(&obs.breakdown, "breakdown", false, "print per-stage latency attribution after the run")
	flag.IntVar(&obs.killDie, "killdie", -1, "chaos: make one die fail every program and erase (degrades it mid-run)")
	obs.profile.RegisterFlags(flag.CommandLine)
	flag.Parse()

	if err := validateTopology(*channels, *dies); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := validateRetryMode(*retryMode); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ageMonths, err := parseAge(*ageSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	pc, err := parsePowercut(*powercut)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := validateRecoveryFlags(pc, *queues, *tracePath, *record); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := obs.startProfiling(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer func() {
		if err := obs.stopProfiling(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()
	opts := cubeftl.Options{
		FTL:             *ftlName,
		Channels:        *channels,
		DiesPerChannel:  *dies,
		DieAffinity:     *dieaware,
		BlocksPerChip:   *blocks,
		Seed:            *seed,
		PECycles:        *pe,
		RetentionMonths: *retention,
		RetryMode:       *retryMode,
		Refresh:         *refresh,
		WearLevel:       *wearlevel,
		ProgramFailRate: *pfail,
		EraseFailRate:   *efail,
		ReadFaultRate:   *rfault,
		FactoryBadRate:  *badblocks,
		Recovery:        pc.mode != pcOff,
		CkptInterval:    *ckptInterval,
	}
	dev, err := cubeftl.New(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	watchSignals(dev)
	if *record != "" {
		f, err := os.Create(*record)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := cubeftl.RecordTrace(f, *wl, dev.LogicalPages(), *requests, *seed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("recorded %d %s requests to %s\n", *requests, *wl, *record)
		return
	}
	fmt.Printf("device: %s, %.1f GiB logical, %dch x %ddie, seed %d, aging {P/E %d, %v months}\n",
		dev.FTLName(), float64(dev.CapacityBytes())/(1<<30), *channels, *dies, *seed, *pe, *retention)

	if *prefill {
		n := int64(dev.LogicalPages()) * 6 / 10
		fmt.Printf("prefilling %d pages...\n", n)
		if written := dev.Prefill(n); written < n {
			fmt.Printf("prefill stopped early: %d/%d pages (device degraded)\n", written, n)
		}
		dev.ResetStats()
	}
	if ageMonths > 0 {
		rep := dev.AgeMonths(ageMonths)
		fmt.Printf("aged %.1f months: +%d P/E (wear %d..%d), %d grown bad blocks, %d retry-bucket jumps, %d blocks scrubbed\n",
			rep.Months, rep.PEAdded, rep.MinPE, rep.MaxPE, rep.BadBlocksGrown, rep.BucketJumps, rep.ScrubQueued)
		// Measure the steady state after the age jump, not the scrub
		// burst itself: the run's WAF ledger then attributes what the
		// workload (and the patrol riding on it) actually costs.
		dev.ResetStats()
	}

	lifetimeOn := *refresh || *wearlevel || ageMonths > 0

	if pc.mode != pcOff {
		// Crash test: telemetry and the hub do not survive a remount, so
		// the power-cut path runs without the observability layer.
		var prefillPages int64
		if *prefill {
			prefillPages = int64(dev.LogicalPages()) * 6 / 10
		}
		if err := runPowerCut(dev, opts, *wl, *requests, *qd, prefillPages, pc, *verifyMount, *seed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := reportWAF(dev, *wafOut, lifetimeOn); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if err := obs.startTelemetry(dev); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *queues != "" {
		if err := runMultiTenant(dev, *queues, *arb, *weights, *rate, *prios, *width, *requests, *qd); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := reportWAF(dev, *wafOut, lifetimeOn); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		settle(dev)
		if err := obs.finishTelemetry(dev); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	var st cubeftl.RunStats
	label := *wl
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		st, err = dev.RunTrace(f, *tracePath, *requests, *qd)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		label = *tracePath
	} else {
		st, err = dev.RunWorkload(*wl, *requests, *qd)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	fmt.Printf("\n%s on %s: %d requests in %v simulated\n", label, dev.FTLName(), st.Requests, st.Elapsed)
	fmt.Printf("  IOPS        %.0f\n", st.IOPS)
	fmt.Printf("  read  p50/p90/p99   %v / %v / %v\n", st.ReadP50, st.ReadP90, st.ReadP99)
	fmt.Printf("  write p50/p90/p99   %v / %v / %v\n", st.WriteP50, st.WriteP90, st.WriteP99)
	fmt.Printf("  mean tPROG  %v\n", st.MeanTPROG)
	fmt.Printf("  read retries %d, GC runs %d, reprograms %d, buffer hits %d\n",
		st.ReadRetries, st.GCRuns, st.Reprograms, st.BufferHits)
	if st.ProgramFailures+st.EraseFailures+st.ReadFaults+st.RetiredBlocks+st.WriteRejects > 0 {
		fmt.Printf("  faults: %d program fails, %d erase fails, %d read faults, %d retired blocks, %d recoveries, %d rejected writes\n",
			st.ProgramFailures, st.EraseFailures, st.ReadFaults, st.RetiredBlocks, st.FaultRecoveries, st.WriteRejects)
		if dev.Degraded() {
			fmt.Println("  DEVICE DEGRADED: read-only (free blocks exhausted)")
		}
	}
	if cs := dev.Cube(); cs.LeaderPrograms+cs.FollowerPrograms > 0 {
		fmt.Printf("  PS-aware: %d leaders, %d followers, %d safety rejects, ORT %d hits / %d misses (%d bytes)\n",
			cs.LeaderPrograms, cs.FollowerPrograms, cs.SafetyRejects, cs.ORTHits, cs.ORTMisses, cs.ORTBytes)
		if cs.RetryHits+cs.RetryMisses+cs.RetryStale > 0 {
			fmt.Printf("  retry table: %d hits / %d misses / %d stale, %d live entries\n",
				cs.RetryHits, cs.RetryMisses, cs.RetryStale, cs.RetryEntries)
		}
	}
	if err := reportWAF(dev, *wafOut, lifetimeOn); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	settle(dev)
	if err := obs.finishTelemetry(dev); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// reportWAF prints the per-cause write-amplification ledger when the
// lifetime machinery is in play and writes the -waf-out JSON file when
// one was requested.
func reportWAF(dev *cubeftl.SSD, path string, enabled bool) error {
	w := dev.WAF()
	if enabled {
		const mib = 1 << 20
		fmt.Printf("  WAF %.3f: host %.1f MiB, GC %.1f MiB, refresh %.1f MiB (%d moves), wear-level %.1f MiB (%d moves)\n",
			w.Factor, float64(w.HostBytes)/mib, float64(w.GCBytes)/mib,
			float64(w.RefreshBytes)/mib, w.Refreshes, float64(w.WLBytes)/mib, w.WearLevels)
	}
	if path == "" {
		return nil
	}
	out := struct {
		WAF            cubeftl.WAFStats `json:"waf"`
		EraseQuantiles [][]int          `json:"erase_quantiles"` // per die: min, median, max
		WearSpread     int              `json:"wear_spread"`
	}{w, dev.EraseQuantiles([]float64{0, 0.5, 1}), dev.WearSpread()}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// watchSignals makes SIGINT/SIGTERM stop the simulation at the next
// event boundary instead of killing the process mid-state: the run
// loops return early with partial results, writers flush, and settle
// checkpoints the device. A second signal force-exits.
func watchSignals(dev *cubeftl.SSD) {
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "\ncubesim: signal — stopping at the next event boundary (signal again to force)")
		dev.Interrupt()
		<-sigc
		fmt.Fprintln(os.Stderr, "cubesim: forced exit")
		os.Exit(1)
	}()
}

// settle finishes an interrupted run gracefully: drain in-flight I/O,
// flush the journal, and (with recovery enabled) write a final
// checkpoint so the next mount starts clean.
func settle(dev *cubeftl.SSD) {
	if !dev.Interrupted() {
		return
	}
	fmt.Fprintln(os.Stderr, "cubesim: interrupted — results above are partial; draining and checkpointing")
	dev.Quiesce()
}

// runPowerCut drives the named workload to the cut instant, kills the
// device mid-flight, remounts from the durable state, and reports the
// recovery. "random" mode first measures the full run on an identical
// probe device (same options and seed, so bit-identical timing) and
// cuts at a seed-derived point within it.
func runPowerCut(dev *cubeftl.SSD, opts cubeftl.Options, wl string, requests, qd int, prefillPages int64, pc powercutSpec, verify bool, seed uint64) error {
	offset := pc.at
	if pc.mode == pcRandom {
		probe, err := cubeftl.New(opts)
		if err != nil {
			return err
		}
		if prefillPages > 0 {
			probe.Prefill(prefillPages)
			probe.ResetStats()
		}
		full, err := probe.RunWorkload(wl, requests, qd)
		if err != nil {
			return err
		}
		// Uniform in [5%, 95%] of the measured run: never so early that
		// nothing happened, never after the workload finished.
		pct := 5 + rng.New(seed^0x51EE9).Intn(91)
		offset = full.Elapsed * time.Duration(pct) / 100
		fmt.Printf("powercut: random cut %v into a %v run (%d%%)\n", offset, full.Elapsed, pct)
	}
	cut := dev.Now() + offset
	st, err := dev.RunWorkloadUntil(wl, requests, qd, cut)
	if err != nil {
		return err
	}
	acked := dev.AckedWrites()
	if err := dev.PowerCut(); err != nil {
		return err
	}
	fmt.Printf("\nPOWER CUT at %v: %d/%d requests completed, %d logical pages durably acked\n",
		time.Duration(cut), st.Requests, requests, acked)
	rpt, err := dev.Remount(verify, false)
	if err != nil {
		return err
	}
	src := "full OOB scan"
	if rpt.UsedCheckpoint {
		src = fmt.Sprintf("checkpoint (%v old) + %d journal records", rpt.CheckpointAge, rpt.JournalRecords)
	}
	fmt.Printf("remounted in %v simulated from %s\n", rpt.MountTime, src)
	fmt.Printf("  journal torn: %v\n", rpt.JournalTorn)
	fmt.Printf("  %d blocks probed, %d found outside durable state, %d OOB pages scanned\n",
		rpt.BlocksProbed, rpt.DiscoveredBlocks, rpt.OOBPagesScanned)
	fmt.Printf("  %d mappings recovered (%d by OOB roll-forward), %d evacuations\n",
		rpt.MappingsRecovered, rpt.RollForwardWins, rpt.EvacuationsQueued)
	if verify {
		fmt.Println("  verification PASSED: consistent L2P/OOB, zero lost acked writes")
	}
	return nil
}

// runMultiTenant drives the comma-separated tenant streams through the
// multi-queue host interface and prints per-tenant QoS accounting.
func runMultiTenant(dev *cubeftl.SSD, queues, arb, weights, rate, prios string, width, requests, qd int) error {
	tenants, err := parseTenants(queues, requests, qd)
	if err != nil {
		return err
	}
	ws, err := splitList("-weights", weights, len(tenants))
	if err != nil {
		return err
	}
	rs, err := splitList("-rate", rate, len(tenants))
	if err != nil {
		return err
	}
	ps, err := splitList("-prios", prios, len(tenants))
	if err != nil {
		return err
	}
	for i := range tenants {
		tenants[i].Weight = int(ws[i])
		tenants[i].RateIOPS = rs[i]
		tenants[i].Priority = int(ps[i])
	}
	st, err := dev.RunTenants(tenants, arb, width)
	if err != nil {
		return err
	}
	fmt.Printf("\n%d tenants, %s arbitration, dispatch width %d: %v simulated, %d grants (trace %016x)\n",
		len(st.Tenants), arb, width, st.Elapsed, st.Grants, st.TraceHash)
	fmt.Printf("%-10s %10s %12s %12s %12s %12s %8s %9s %9s\n",
		"tenant", "IOPS", "read p50", "read p99", "read p99.9", "write p99", "grants", "qfulls", "throttles")
	for _, t := range st.Tenants {
		fmt.Printf("%-10s %10.0f %12v %12v %12v %12v %8d %9d %9d\n",
			t.Name, t.IOPS, t.ReadP50, t.ReadP99, t.ReadP999, t.WriteP99,
			t.Grants, t.QueueFulls, t.Throttles)
		if t.Rejects > 0 {
			fmt.Printf("%-10s   %d pages rejected (degraded device)\n", "", t.Rejects)
		}
	}
	fmt.Printf("aggregate: read p99 %v, write p99 %v\n", st.AggReadP99, st.AggWriteP99)
	return nil
}
