package main

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"cubeftl"
)

// validateTopology rejects non-positive -channels / -dies values with
// an error naming the offending flag.
func validateTopology(channels, dies int) error {
	if channels <= 0 {
		return fmt.Errorf("cubesim: -channels must be positive, got %d", channels)
	}
	if dies <= 0 {
		return fmt.Errorf("cubesim: -dies must be positive, got %d", dies)
	}
	return nil
}

// validateRetryMode rejects unknown -retry-mode values with an error
// naming the flag and the accepted set (empty selects the default).
func validateRetryMode(mode string) error {
	if mode == "" {
		return nil
	}
	for _, m := range cubeftl.RetryModes() {
		if mode == m {
			return nil
		}
	}
	return fmt.Errorf("cubesim: -retry-mode: unknown mode %q (want one of %s)",
		mode, strings.Join(cubeftl.RetryModes(), ", "))
}

// powercutMode is how -powercut picks the cut instant.
type powercutMode int

const (
	pcOff    powercutMode = iota // no power cut
	pcAt                         // cut a fixed simulated duration into the run
	pcRandom                     // cut at a seed-derived random point in the run
)

// powercutSpec is the parsed -powercut flag.
type powercutSpec struct {
	mode powercutMode
	at   time.Duration // pcAt: offset into the measured run
}

// parsePowercut parses the -powercut spec: empty (off), "random" (a
// seed-derived cut point inside the run), or a positive simulated
// duration into the run such as "5ms".
func parsePowercut(spec string) (powercutSpec, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return powercutSpec{mode: pcOff}, nil
	}
	if spec == "random" {
		return powercutSpec{mode: pcRandom}, nil
	}
	d, err := time.ParseDuration(spec)
	if err != nil {
		return powercutSpec{}, fmt.Errorf("cubesim: -powercut: %q is neither \"random\" nor a duration: %v", spec, err)
	}
	if d <= 0 {
		return powercutSpec{}, fmt.Errorf("cubesim: -powercut must be a positive duration, got %v", d)
	}
	return powercutSpec{mode: pcAt, at: d}, nil
}

// parseAge parses the -age spec into simulated retention months: empty
// (no aging), a count of years ("3y", "2.5y"), a count of months
// ("18mo"), or a Go duration ("4380h") converted at 730h per month.
func parseAge(spec string) (float64, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return 0, nil
	}
	var months float64
	switch {
	case strings.HasSuffix(spec, "y"):
		years, err := strconv.ParseFloat(strings.TrimSuffix(spec, "y"), 64)
		if err != nil {
			return 0, fmt.Errorf("cubesim: -age: bad year count %q: %v", spec, err)
		}
		months = years * 12
	case strings.HasSuffix(spec, "mo"):
		var err error
		months, err = strconv.ParseFloat(strings.TrimSuffix(spec, "mo"), 64)
		if err != nil {
			return 0, fmt.Errorf("cubesim: -age: bad month count %q: %v", spec, err)
		}
	default:
		d, err := time.ParseDuration(spec)
		if err != nil {
			return 0, fmt.Errorf("cubesim: -age: %q is not a year count (\"3y\"), month count (\"18mo\"), or duration: %v", spec, err)
		}
		months = d.Hours() / 730
	}
	if months <= 0 {
		return 0, fmt.Errorf("cubesim: -age must be positive, got %q", spec)
	}
	return months, nil
}

// validateRecoveryFlags rejects flag combinations the power-cut path
// does not support: the cut drives a single synthetic workload stream,
// so multi-tenant mode, trace replay, and trace recording are out.
func validateRecoveryFlags(pc powercutSpec, queues, tracePath, record string) error {
	if pc.mode == pcOff {
		return nil
	}
	switch {
	case queues != "":
		return fmt.Errorf("cubesim: -powercut does not combine with -queues (single-stream only)")
	case tracePath != "":
		return fmt.Errorf("cubesim: -powercut does not combine with -trace (synthetic workloads only)")
	case record != "":
		return fmt.Errorf("cubesim: -powercut does not combine with -record")
	}
	return nil
}

// parseTenants parses the -queues spec: comma-separated tenant streams,
// each "workload" or "name=workload".
func parseTenants(spec string, requests, qd int) ([]cubeftl.TenantConfig, error) {
	var tenants []cubeftl.TenantConfig
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, wl := "", part
		if eq := strings.IndexByte(part, '='); eq >= 0 {
			name, wl = part[:eq], part[eq+1:]
		}
		tenants = append(tenants, cubeftl.TenantConfig{
			Name: name, Workload: wl, Requests: requests, QueueDepth: qd,
		})
	}
	if len(tenants) == 0 {
		return nil, fmt.Errorf("cubesim: -queues named no tenants")
	}
	return tenants, nil
}

// splitList parses a comma-separated numeric flag into per-tenant
// values: empty spec means all-default (zero), otherwise exactly one
// value per tenant (an empty entry, as in "8,,1", keeps the default).
// Errors name the offending flag and the expected count.
func splitList(flagName, spec string, n int) ([]float64, error) {
	out := make([]float64, n)
	if spec == "" {
		return out, nil
	}
	parts := strings.Split(spec, ",")
	if len(parts) != n {
		return nil, fmt.Errorf("cubesim: %s: got %d values, want %d (one per -queues tenant)",
			flagName, len(parts), n)
	}
	for i, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("cubesim: %s: bad value %q: %v", flagName, p, err)
		}
		out[i] = v
	}
	return out, nil
}
