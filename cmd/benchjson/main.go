// Command benchjson runs the core benchmark scenarios — the multi-die
// scaling pair behind `make bench-scale` and the telemetry-overhead
// pair behind `make bench-telemetry` — and writes one machine-readable
// BENCH_core.json so the performance trajectory is tracked across
// commits. `make bench-json` runs exactly this.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"os/signal"
	"runtime"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"cubeftl"
	"cubeftl/internal/experiment"
	"cubeftl/internal/workload"
)

// Graceful shutdown: SIGINT/SIGTERM stops the suite at the next
// scenario boundary (interrupting a facade run already in flight) and
// still writes the report, marked partial, so a cancelled run leaves a
// valid artifact instead of a truncated file.
var (
	stopping atomic.Bool
	current  atomic.Pointer[cubeftl.SSD]
)

func watchSignals() {
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "\nbenchjson: signal — finishing current scenario and writing a partial report")
		stopping.Store(true)
		if dev := current.Load(); dev != nil {
			dev.Interrupt()
		}
		<-sigc
		fmt.Fprintln(os.Stderr, "benchjson: forced exit")
		os.Exit(1)
	}()
}

// BenchResult is one scenario's measurement. Latencies are simulated
// nanoseconds; WallMs is real time spent running the scenario.
type BenchResult struct {
	Name       string  `json:"name"`
	Requests   int64   `json:"requests"`
	IOPS       float64 `json:"iops"`
	ReadP50Ns  int64   `json:"read_p50_ns"`
	ReadP99Ns  int64   `json:"read_p99_ns"`
	WriteP50Ns int64   `json:"write_p50_ns"`
	WriteP99Ns int64   `json:"write_p99_ns"`
	SimNs      int64   `json:"sim_elapsed_ns"`
	WallMs     float64 `json:"wall_ms"`
}

// BenchReport is the BENCH_core.json document.
type BenchReport struct {
	GeneratedUnix int64  `json:"generated_unix"`
	GitRev        string `json:"git_rev"`
	GoVersion     string `json:"go_version"`
	Seed          uint64 `json:"seed"`

	Benches []BenchResult `json:"benches"`

	// Partial marks a report cut short by SIGINT/SIGTERM: the scenarios
	// present are valid, the absent ones never ran.
	Partial bool `json:"partial,omitempty"`

	// ScaleSpeedup2x4 is the 2x4 over 1x1 Mixed IOPS ratio (the
	// bench-scale gate expects >= 1.5). TelemetryOverheadPct is the
	// simulated-elapsed cost of full telemetry over the identical run
	// with telemetry off (the EXPERIMENTS.md contract expects < 2%).
	ScaleSpeedup2x4      float64 `json:"scale_speedup_2x4"`
	TelemetryOverheadPct float64 `json:"telemetry_overhead_pct"`
}

func gitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// runScale is one leg of the bench-scale pair: Mixed on cubeFTL at the
// given topology.
func runScale(name string, channels, dies, requests int, seed uint64) BenchResult {
	o := experiment.DefaultSSDOpts()
	o.Requests = requests
	o.Seed = seed
	o.Channels, o.DiesPerChannel = channels, dies
	start := time.Now()
	out := experiment.RunWorkload(experiment.PolicyCube, workload.Mixed, o)
	wall := time.Since(start)
	r := out.Result
	return BenchResult{
		Name:       name,
		Requests:   r.Requests,
		IOPS:       r.IOPS(),
		ReadP50Ns:  r.ReadLat.Percentile(50),
		ReadP99Ns:  r.ReadLat.Percentile(99),
		WriteP50Ns: r.WriteLat.Percentile(50),
		WriteP99Ns: r.WriteLat.Percentile(99),
		SimNs:      int64(r.ElapsedNs),
		WallMs:     float64(wall.Microseconds()) / 1000,
	}
}

// runTelemetry is one leg of the bench-telemetry pair: Mixed through
// the facade with the observability layer fully off or fully on
// (tracer + stage attribution + 1 ms sampling to a discard sink).
func runTelemetry(name string, enable bool, requests int, seed uint64) (BenchResult, error) {
	dev, err := cubeftl.New(cubeftl.Options{FTL: cubeftl.FTLCube, BlocksPerChip: 32, Seed: seed})
	if err != nil {
		return BenchResult{}, err
	}
	current.Store(dev)
	defer current.Store(nil)
	dev.Prefill(int64(dev.LogicalPages()) * 6 / 10)
	dev.ResetStats()
	if enable {
		dev.EnableTelemetry(cubeftl.TelemetryConfig{Trace: true})
		if err := dev.StartStats(io.Discard, time.Millisecond); err != nil {
			return BenchResult{}, err
		}
	}
	start := time.Now()
	st, err := dev.RunWorkload("Mixed", requests, 24)
	if err != nil {
		return BenchResult{}, err
	}
	wall := time.Since(start)
	if dev.Interrupted() {
		dev.Quiesce() // drain so the partial percentiles are settled
	}
	if enable {
		if err := dev.CloseStats(); err != nil {
			return BenchResult{}, err
		}
	}
	return BenchResult{
		Name:       name,
		Requests:   st.Requests,
		IOPS:       st.IOPS,
		ReadP50Ns:  int64(st.ReadP50),
		ReadP99Ns:  int64(st.ReadP99),
		WriteP50Ns: int64(st.WriteP50),
		WriteP99Ns: int64(st.WriteP99),
		SimNs:      int64(st.Elapsed),
		WallMs:     float64(wall.Microseconds()) / 1000,
	}, nil
}

func main() {
	out := flag.String("out", "BENCH_core.json", "output path for the JSON report")
	requests := flag.Int("requests", 4000, "host requests per scenario")
	seed := flag.Uint64("seed", 1, "random seed shared by every scenario")
	flag.Parse()

	watchSignals()
	rep := BenchReport{
		GeneratedUnix: time.Now().Unix(),
		GitRev:        gitRev(),
		GoVersion:     runtime.Version(),
		Seed:          *seed,
	}

	single := runScale("scale-mixed-1x1", 1, 1, *requests, *seed)
	rep.Benches = append(rep.Benches, single)
	if !stopping.Load() {
		array := runScale("scale-mixed-2x4", 2, 4, *requests, *seed)
		rep.Benches = append(rep.Benches, array)
		if single.IOPS > 0 {
			rep.ScaleSpeedup2x4 = array.IOPS / single.IOPS
		}
	}

	if !stopping.Load() {
		off, err := runTelemetry("telemetry-off-mixed", false, *requests, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		rep.Benches = append(rep.Benches, off)
		if !stopping.Load() {
			on, err := runTelemetry("telemetry-on-mixed", true, *requests, *seed)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			rep.Benches = append(rep.Benches, on)
			if off.SimNs > 0 {
				rep.TelemetryOverheadPct = 100 * (float64(on.SimNs) - float64(off.SimNs)) / float64(off.SimNs)
			}
		}
	}
	rep.Partial = stopping.Load()

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s: %d scenarios (rev %s, seed %d): 2x4 speedup %.2fx, telemetry overhead %.2f%%\n",
		*out, len(rep.Benches), rep.GitRev, rep.Seed, rep.ScaleSpeedup2x4, rep.TelemetryOverheadPct)
	for _, b := range rep.Benches {
		fmt.Printf("  %-22s %8.0f IOPS  rp99 %8dns  wp99 %8dns  wall %7.1fms\n",
			b.Name, b.IOPS, b.ReadP99Ns, b.WriteP99Ns, b.WallMs)
	}
}
