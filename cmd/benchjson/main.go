// Command benchjson runs the core benchmark scenarios — the multi-die
// scaling pair behind `make bench-scale`, the telemetry-overhead pair
// behind `make bench-telemetry`, the fleet sharding pair, the aged
// read-retry trio (baseline / ort / ort-pr-ar), and the cache hit-rate
// sweep — and writes one machine-readable
// BENCH_core.json so the performance trajectory is tracked across
// commits. `make bench-json` runs exactly this.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"os/signal"
	"runtime"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"cubeftl"
	"cubeftl/internal/cache"
	"cubeftl/internal/experiment"
	"cubeftl/internal/fleet"
	"cubeftl/internal/workload"
)

// Graceful shutdown: SIGINT/SIGTERM stops the suite at the next
// scenario boundary (interrupting a facade run already in flight) and
// still writes the report, marked partial, so a cancelled run leaves a
// valid artifact instead of a truncated file.
var (
	stopping atomic.Bool
	current  atomic.Pointer[cubeftl.SSD]
)

func watchSignals() {
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "\nbenchjson: signal — finishing current scenario and writing a partial report")
		stopping.Store(true)
		if dev := current.Load(); dev != nil {
			dev.Interrupt()
		}
		<-sigc
		fmt.Fprintln(os.Stderr, "benchjson: forced exit")
		os.Exit(1)
	}()
}

// BenchResult is one scenario's measurement. Latencies are simulated
// nanoseconds; WallMs is real time spent running the scenario.
type BenchResult struct {
	Name       string  `json:"name"`
	Requests   int64   `json:"requests"`
	IOPS       float64 `json:"iops"`
	ReadP50Ns  int64   `json:"read_p50_ns"`
	ReadP99Ns  int64   `json:"read_p99_ns"`
	WriteP50Ns int64   `json:"write_p50_ns"`
	WriteP99Ns int64   `json:"write_p99_ns"`
	SimNs      int64   `json:"sim_elapsed_ns"`
	WallMs     float64 `json:"wall_ms"`
	// HitRate is the host-cache read hit rate, present only for the
	// fleet and cache-sweep scenarios.
	HitRate float64 `json:"hit_rate,omitempty"`
	// WAF is the write-amplification factor (total/host program bytes),
	// present only for the lifetime scenarios.
	WAF float64 `json:"waf,omitempty"`
}

// BenchReport is the BENCH_core.json document.
type BenchReport struct {
	GeneratedUnix int64  `json:"generated_unix"`
	GitRev        string `json:"git_rev"`
	GoVersion     string `json:"go_version"`
	Seed          uint64 `json:"seed"`

	Benches []BenchResult `json:"benches"`

	// Partial marks a report cut short by SIGINT/SIGTERM: the scenarios
	// present are valid, the absent ones never ran.
	Partial bool `json:"partial,omitempty"`

	// ScaleSpeedup2x4 is the 2x4 over 1x1 Mixed IOPS ratio (the
	// bench-scale gate expects >= 1.5). TelemetryOverheadPct is the
	// simulated-elapsed cost of full telemetry over the identical run
	// with telemetry off — the passivity contract expects exactly 0.
	ScaleSpeedup2x4      float64 `json:"scale_speedup_2x4"`
	TelemetryOverheadPct float64 `json:"telemetry_overhead_pct"`

	// The wall-clock cost of observing: full tracing vs telemetry off,
	// and 1-in-16 span sampling vs telemetry off, on the identical run
	// (best-of-3 walls; the sim outputs are bit-identical across legs).
	// Sampling exists to pull the first number down to the second.
	TelemetryFullWallPct    float64 `json:"telemetry_full_wall_overhead_pct"`
	TelemetrySampledWallPct float64 `json:"telemetry_sampled_wall_overhead_pct"`

	// FleetScale8x is the fleet-8shard over fleet-1shard wall-time
	// ratio: 8 shards replaying 8x the IO volume behind write-back
	// caches, versus one uncached shard at 1x. The EXPERIMENTS.md
	// contract expects < 2.5x on this host (one core — the headroom
	// comes from cache absorption, not parallelism).
	FleetScale8x float64 `json:"fleet_scale_8x"`

	// RetryP99GainPct is the read-p99 reduction of the full pipelined
	// retry stack (ort-pr-ar) over plain ORT on the aged device — the
	// EXPERIMENTS.md contract expects it to stay positive.
	RetryP99GainPct float64 `json:"retry_p99_gain_pct"`

	// LifetimeP99GainPct is the read-p99 reduction of refresh + wear
	// leveling over the do-nothing baseline on a device fast-forwarded
	// three simulated years — the lifetime-figure contract expects the
	// policies to hold p99 well under the degraded baseline.
	LifetimeP99GainPct float64 `json:"lifetime_p99_gain_pct"`
}

func gitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// runScale is one leg of the bench-scale pair: Mixed on cubeFTL at the
// given topology.
func runScale(name string, channels, dies, requests int, seed uint64) BenchResult {
	o := experiment.DefaultSSDOpts()
	o.Requests = requests
	o.Seed = seed
	o.Channels, o.DiesPerChannel = channels, dies
	start := time.Now()
	out := experiment.RunWorkload(experiment.PolicyCube, workload.Mixed, o)
	wall := time.Since(start)
	r := out.Result
	return BenchResult{
		Name:       name,
		Requests:   r.Requests,
		IOPS:       r.IOPS(),
		ReadP50Ns:  r.ReadLat.Percentile(50),
		ReadP99Ns:  r.ReadLat.Percentile(99),
		WriteP50Ns: r.WriteLat.Percentile(50),
		WriteP99Ns: r.WriteLat.Percentile(99),
		SimNs:      int64(r.ElapsedNs),
		WallMs:     float64(wall.Microseconds()) / 1000,
	}
}

// runTelemetry is one leg of the bench-telemetry trio: Mixed through
// the facade with the observability layer fully off ("off"), fully on
// ("full": tracer + stage attribution + 1 ms sampling to a discard
// sink), or span-sampled 1-in-16 ("sampled": same sinks, 1/16 of the
// spans). The sim outputs are bit-identical across modes (passivity);
// only the wall clock differs, so each leg runs three times and keeps
// the best wall.
func runTelemetry(name, mode string, requests int, seed uint64) (BenchResult, error) {
	var best BenchResult
	for rep := 0; rep < 3 && !stopping.Load(); rep++ {
		dev, err := cubeftl.New(cubeftl.Options{FTL: cubeftl.FTLCube, BlocksPerChip: 32, Seed: seed})
		if err != nil {
			return BenchResult{}, err
		}
		current.Store(dev)
		dev.Prefill(int64(dev.LogicalPages()) * 6 / 10)
		dev.ResetStats()
		if mode != "off" {
			tcfg := cubeftl.TelemetryConfig{Trace: true}
			if mode == "sampled" {
				tcfg.SpanSample = 16
			}
			dev.EnableTelemetry(tcfg)
			if err := dev.StartStats(io.Discard, time.Millisecond); err != nil {
				current.Store(nil)
				return BenchResult{}, err
			}
		}
		start := time.Now()
		st, err := dev.RunWorkload("Mixed", requests, 24)
		if err != nil {
			current.Store(nil)
			return BenchResult{}, err
		}
		wall := time.Since(start)
		if dev.Interrupted() {
			dev.Quiesce() // drain so the partial percentiles are settled
		}
		if mode != "off" {
			if err := dev.CloseStats(); err != nil {
				current.Store(nil)
				return BenchResult{}, err
			}
		}
		current.Store(nil)
		b := BenchResult{
			Name:       name,
			Requests:   st.Requests,
			IOPS:       st.IOPS,
			ReadP50Ns:  int64(st.ReadP50),
			ReadP99Ns:  int64(st.ReadP99),
			WriteP50Ns: int64(st.WriteP50),
			WriteP99Ns: int64(st.WriteP99),
			SimNs:      int64(st.Elapsed),
			WallMs:     float64(wall.Microseconds()) / 1000,
		}
		if best.Name == "" || b.WallMs < best.WallMs {
			best = b
		}
	}
	return best, nil
}

// runRetry is one leg of the read-retry trio: Rocks on an aged cube
// device (2K P/E cycles, 12 months retention — the ~90% retry regime)
// under the named retry stack. Same seed across legs, so baseline/ort
// differ from ort-pr-ar only in retry policy and latency arithmetic.
func runRetry(name, mode string, requests int, seed uint64) (BenchResult, error) {
	dev, err := cubeftl.New(cubeftl.Options{
		FTL:             cubeftl.FTLCube,
		BlocksPerChip:   32,
		Seed:            seed,
		PECycles:        2000,
		RetentionMonths: 12,
		RetryMode:       mode,
	})
	if err != nil {
		return BenchResult{}, err
	}
	current.Store(dev)
	defer current.Store(nil)
	dev.Prefill(int64(dev.LogicalPages()) * 6 / 10)
	dev.ResetStats()
	start := time.Now()
	st, err := dev.RunWorkload("Rocks", requests, 24)
	if err != nil {
		return BenchResult{}, err
	}
	wall := time.Since(start)
	if dev.Interrupted() {
		dev.Quiesce()
	}
	return BenchResult{
		Name:       name,
		Requests:   st.Requests,
		IOPS:       st.IOPS,
		ReadP50Ns:  int64(st.ReadP50),
		ReadP99Ns:  int64(st.ReadP99),
		WriteP50Ns: int64(st.WriteP50),
		WriteP99Ns: int64(st.WriteP99),
		SimNs:      int64(st.Elapsed),
		WallMs:     float64(wall.Microseconds()) / 1000,
	}, nil
}

// runLifetime is one leg of the lifetime pair: Rocks on a cube device
// fast-forwarded three simulated years (per-block wear with jitter,
// retention clocks, grown bad blocks), with or without the lifetime
// policies. The refresh leg rewrites retention-expired blocks during
// the age jump, so the measured run reads fresh cells; the baseline
// reads three-year-old cells and eats the retry storm.
func runLifetime(name string, refresh, wearLevel bool, requests int, seed uint64) (BenchResult, error) {
	dev, err := cubeftl.New(cubeftl.Options{
		FTL:           cubeftl.FTLCube,
		BlocksPerChip: 32,
		Seed:          seed,
		RetryMode:     "ort-pr",
		Refresh:       refresh,
		WearLevel:     wearLevel,
	})
	if err != nil {
		return BenchResult{}, err
	}
	current.Store(dev)
	defer current.Store(nil)
	dev.Prefill(int64(dev.LogicalPages()) * 6 / 10)
	// Reset before the age jump: the WAF window then covers the jump's
	// scrub burst plus the measured run, pricing the refresh policy
	// honestly instead of hiding its cost in the discarded window.
	dev.ResetStats()
	dev.AgeMonths(3 * 12)
	start := time.Now()
	st, err := dev.RunWorkload("Rocks", requests, 24)
	if err != nil {
		return BenchResult{}, err
	}
	wall := time.Since(start)
	if dev.Interrupted() {
		dev.Quiesce()
	}
	return BenchResult{
		Name:       name,
		Requests:   st.Requests,
		IOPS:       st.IOPS,
		ReadP50Ns:  int64(st.ReadP50),
		ReadP99Ns:  int64(st.ReadP99),
		WriteP50Ns: int64(st.WriteP50),
		WriteP99Ns: int64(st.WriteP99),
		SimNs:      int64(st.Elapsed),
		WallMs:     float64(wall.Microseconds()) / 1000,
		WAF:        dev.WAF().Factor,
	}, nil
}

// runFleet is one leg of the fleet sharding pair: the checked-in MSR
// fixture replayed across the given shard count, with the trace
// repeated 4x per shard so total IO volume scales with the fleet and
// the per-shard device build cost is amortized over the replay. The
// deterministic stats are identical across repetitions, so the leg
// runs three times and keeps the best wall time — the standard guard
// against scheduler noise on a shared host.
func runFleet(name, tracePath string, shards, cachePages int, seed uint64) (BenchResult, error) {
	var best BenchResult
	for rep := 0; rep < 3 && !stopping.Load(); rep++ {
		f, err := os.Open(tracePath)
		if err != nil {
			return BenchResult{}, err
		}
		st, err := cubeftl.RunFleet(cubeftl.FleetOptions{
			Shards:         shards,
			Tenants:        1024,
			Seed:           seed,
			BlocksPerChip:  8,
			Channels:       1,
			DiesPerChannel: 2,
			CachePages:     cachePages,
			CachePolicy:    cubeftl.Cache2Q,
			CacheMode:      "back",
			Repeat:         4 * shards,
		}, tracePath, f, cubeftl.TraceReplayOptions{TimeCompression: 20})
		f.Close()
		if err != nil {
			return BenchResult{}, err
		}
		iops := 0.0
		if st.SimElapsed > 0 {
			iops = float64(st.Requests) / st.SimElapsed.Seconds()
		}
		b := BenchResult{
			Name:       name,
			Requests:   st.Requests,
			IOPS:       iops,
			ReadP50Ns:  int64(st.ReadP50),
			ReadP99Ns:  int64(st.ReadP99),
			WriteP50Ns: int64(st.WriteP50),
			WriteP99Ns: int64(st.WriteP99),
			SimNs:      int64(st.SimElapsed),
			WallMs:     float64(st.Wall.Microseconds()) / 1000,
			HitRate:    st.HitRate,
		}
		if best.Name == "" || b.WallMs < best.WallMs {
			best = b
		}
	}
	return best, nil
}

// hitTrace synthesizes a pure-read trace whose cache hit rate is
// controlled by hitFrac: that fraction of reads re-reference a 128-page
// hot window (one tenant's extent, cache-resident after warmup), the
// rest stream uniformly over a span far larger than the cache.
func hitTrace(n int, hitFrac float64, seed uint64) *workload.TimedTrace {
	tr := &workload.TimedTrace{Name: fmt.Sprintf("hit-sweep-%.0f", hitFrac*100)}
	state := seed*2862933555777941757 + 3037000493
	next := func() uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return state >> 33
	}
	at := int64(0)
	for i := 0; i < n; i++ {
		var lpn int64
		if float64(next()%1000)/1000 < hitFrac {
			lpn = int64(next() % 128) // hot window: one tenant extent
		} else {
			lpn = int64(next() % (1 << 21)) // cold stream, far beyond cache
		}
		tr.Reqs = append(tr.Reqs, workload.TimedRequest{
			AtNs: at, Host: "sweep", Op: workload.Read, LPN: lpn, Pages: 1,
		})
		// 25 us arrivals: over the device's read throughput when every
		// request misses, under it when 90% hit — so the sweep moves the
		// device through oversubscribed, saturated, and unloaded regimes.
		at += 25_000
		tr.SpanNs = at
	}
	return tr
}

// runCacheSweep measures read latency in one cache hit-rate regime on a
// single cached shard: same arrival process, only the re-reference
// fraction changes.
func runCacheSweep(name string, hitFrac float64, requests int, seed uint64) (BenchResult, error) {
	tr := hitTrace(requests, hitFrac, seed)
	res, err := fleet.Run(fleet.Config{
		Shards:         1,
		Tenants:        64,
		Seed:           seed,
		BlocksPerChip:  32,
		Channels:       1,
		DiesPerChannel: 4,
		Cache:          cache.Config{SizePages: 1024, Policy: cache.PolicyLRU, Mode: cache.WriteThrough},
		// Map the whole logical space so cache misses pay real flash
		// reads rather than the controller's buffer-miss fast path.
		PrefillPages: 1 << 30,
	}, tr)
	if err != nil {
		return BenchResult{}, err
	}
	iops := 0.0
	if res.SimElapsedNs > 0 {
		iops = float64(res.Requests) / (float64(res.SimElapsedNs) / 1e9)
	}
	return BenchResult{
		Name:       name,
		Requests:   res.Requests,
		IOPS:       iops,
		ReadP50Ns:  res.ReadLat.Percentile(50),
		ReadP99Ns:  res.ReadLat.Percentile(99),
		WriteP50Ns: res.WriteLat.Percentile(50),
		WriteP99Ns: res.WriteLat.Percentile(99),
		SimNs:      int64(res.SimElapsedNs),
		WallMs:     float64(res.WallNs) / 1e6,
		HitRate:    res.HitRate(),
	}, nil
}

func main() {
	out := flag.String("out", "BENCH_core.json", "output path for the JSON report")
	requests := flag.Int("requests", 4000, "host requests per scenario")
	seed := flag.Uint64("seed", 1, "random seed shared by every scenario")
	tracePath := flag.String("trace", "internal/workload/testdata/msr_sample.csv",
		"MSR fixture replayed by the fleet scenarios")
	flag.Parse()

	watchSignals()
	rep := BenchReport{
		GeneratedUnix: time.Now().Unix(),
		GitRev:        gitRev(),
		GoVersion:     runtime.Version(),
		Seed:          *seed,
	}

	single := runScale("scale-mixed-1x1", 1, 1, *requests, *seed)
	rep.Benches = append(rep.Benches, single)
	if !stopping.Load() {
		array := runScale("scale-mixed-2x4", 2, 4, *requests, *seed)
		rep.Benches = append(rep.Benches, array)
		if single.IOPS > 0 {
			rep.ScaleSpeedup2x4 = array.IOPS / single.IOPS
		}
	}

	if !stopping.Load() {
		off, err := runTelemetry("telemetry-off-mixed", "off", *requests, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		rep.Benches = append(rep.Benches, off)
		if !stopping.Load() {
			on, err := runTelemetry("telemetry-on-mixed", "full", *requests, *seed)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			rep.Benches = append(rep.Benches, on)
			if off.SimNs > 0 {
				rep.TelemetryOverheadPct = 100 * (float64(on.SimNs) - float64(off.SimNs)) / float64(off.SimNs)
			}
			if off.WallMs > 0 {
				rep.TelemetryFullWallPct = 100 * (on.WallMs - off.WallMs) / off.WallMs
			}
		}
		if !stopping.Load() {
			sampled, err := runTelemetry("telemetry-sampled-mixed", "sampled", *requests, *seed)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			rep.Benches = append(rep.Benches, sampled)
			if off.WallMs > 0 {
				rep.TelemetrySampledWallPct = 100 * (sampled.WallMs - off.WallMs) / off.WallMs
			}
		}
	}
	if !stopping.Load() {
		one, err := runFleet("fleet-1shard", *tracePath, 1, 0, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		rep.Benches = append(rep.Benches, one)
		if !stopping.Load() {
			eight, err := runFleet("fleet-8shard", *tracePath, 8, 4096, *seed)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			rep.Benches = append(rep.Benches, eight)
			if one.WallMs > 0 {
				rep.FleetScale8x = eight.WallMs / one.WallMs
			}
		}
	}

	var retryOrt, retryAR BenchResult
	for _, leg := range []struct {
		name, mode string
	}{
		{"retry-baseline", "baseline"},
		{"retry-ort", "ort"},
		{"retry-ort-pr-ar", "ort-pr-ar"},
	} {
		if stopping.Load() {
			break
		}
		b, err := runRetry(leg.name, leg.mode, *requests, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		rep.Benches = append(rep.Benches, b)
		switch leg.mode {
		case "ort":
			retryOrt = b
		case "ort-pr-ar":
			retryAR = b
		}
	}
	if retryOrt.ReadP99Ns > 0 && retryAR.ReadP99Ns > 0 {
		rep.RetryP99GainPct = 100 * (1 - float64(retryAR.ReadP99Ns)/float64(retryOrt.ReadP99Ns))
	}

	var lifeBase, lifePol BenchResult
	for _, leg := range []struct {
		name        string
		refresh, wl bool
	}{
		{"lifetime-aged-base", false, false},
		{"lifetime-aged-refresh-wl", true, true},
	} {
		if stopping.Load() {
			break
		}
		b, err := runLifetime(leg.name, leg.refresh, leg.wl, *requests, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		rep.Benches = append(rep.Benches, b)
		if leg.refresh {
			lifePol = b
		} else {
			lifeBase = b
		}
	}
	if lifeBase.ReadP99Ns > 0 && lifePol.ReadP99Ns > 0 {
		rep.LifetimeP99GainPct = 100 * (1 - float64(lifePol.ReadP99Ns)/float64(lifeBase.ReadP99Ns))
	}

	for _, sweep := range []struct {
		name string
		frac float64
	}{
		{"cache-hit-0", 0}, {"cache-hit-50", 0.5}, {"cache-hit-90", 0.9},
	} {
		if stopping.Load() {
			break
		}
		b, err := runCacheSweep(sweep.name, sweep.frac, *requests, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		rep.Benches = append(rep.Benches, b)
	}
	rep.Partial = stopping.Load()

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s: %d scenarios (rev %s, seed %d): 2x4 speedup %.2fx, telemetry sim overhead %.2f%% (wall: full %+.0f%%, sampled %+.0f%%), fleet 8x scale %.2fx, retry p99 gain %.1f%%, lifetime p99 gain %.1f%%\n",
		*out, len(rep.Benches), rep.GitRev, rep.Seed, rep.ScaleSpeedup2x4, rep.TelemetryOverheadPct,
		rep.TelemetryFullWallPct, rep.TelemetrySampledWallPct, rep.FleetScale8x, rep.RetryP99GainPct,
		rep.LifetimeP99GainPct)
	for _, b := range rep.Benches {
		fmt.Printf("  %-24s %8.0f IOPS  rp99 %8dns  wp99 %8dns  wall %7.1fms",
			b.Name, b.IOPS, b.ReadP99Ns, b.WriteP99Ns, b.WallMs)
		if b.HitRate > 0 {
			fmt.Printf("  hit %.3f", b.HitRate)
		}
		if b.WAF > 0 {
			fmt.Printf("  waf %.3f", b.WAF)
		}
		fmt.Println()
	}
}
