// Command paperfig regenerates the data figures of "Exploiting Process
// Similarity of 3D Flash Memory for High Performance SSDs" (MICRO-52,
// 2019) on the simulated chips and SSD and prints the same rows/series
// the paper reports.
//
// Usage:
//
//	paperfig [-seed N] all          # every figure, paper order
//	paperfig [-seed N] fig17a fig18 # specific figures
//	paperfig -list                  # available figure ids
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cubeftl"
)

func main() {
	seed := flag.Uint64("seed", 1, "root random seed (runs are deterministic per seed)")
	list := flag.Bool("list", false, "list available figure ids and exit")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON instead of tables")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: paperfig [-seed N] all|<figure-id>...\navailable: %s\n",
			strings.Join(cubeftl.FigureIDs(), " "))
	}
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(cubeftl.FigureIDs(), "\n"))
		return
	}
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if len(args) == 1 && args[0] == "all" {
		args = cubeftl.FigureIDs()
	}
	for _, id := range args {
		start := time.Now()
		var err error
		if *asJSON {
			err = cubeftl.ReproduceFigureJSON(id, *seed, os.Stdout)
		} else {
			err = cubeftl.ReproduceFigure(id, *seed, os.Stdout)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if !*asJSON {
			fmt.Printf("  [%s regenerated in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
		}
	}
}
