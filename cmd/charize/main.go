// Command charize performs raw process-characterization sweeps on a
// simulated 3D TLC chip, the way the paper's §3 study swept real chips
// on a test board: it dumps per-layer/per-WL retention-error samples,
// deltaV/deltaH metrics, loop windows, and optimal read offsets over a
// grid of P/E cycles and retention times, as CSV for further analysis.
//
// Usage:
//
//	charize -seed 3 -blocks 16 > sweep.csv
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"

	"cubeftl/internal/nand"
	"cubeftl/internal/process"
)

func main() {
	seed := flag.Uint64("seed", 1, "chip seed")
	blocks := flag.Int("blocks", 8, "blocks to sweep")
	flag.Parse()

	cfg := nand.DefaultConfig()
	cfg.Process.Seed = *seed
	chip := nand.New(cfg)
	m := chip.Model()

	w := csv.NewWriter(os.Stdout)
	defer w.Flush()
	header := []string{
		"block", "layer", "wl", "pe", "retention_months",
		"ber", "n_ret_sample", "delta_h", "delta_v",
		"loop_min_p7", "loop_max_p7", "optimal_offset",
	}
	if err := w.Write(header); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	agings := []process.Aging{
		{PE: 0, RetentionMonths: 0},
		{PE: 500, RetentionMonths: 1},
		{PE: 1000, RetentionMonths: 3},
		{PE: 2000, RetentionMonths: 1},
		{PE: 2000, RetentionMonths: 12},
	}
	for b := 0; b < *blocks && b < m.Config().BlocksPerChip; b++ {
		for l := 0; l < m.Config().Layers; l++ {
			for _, a := range agings {
				ws := m.LoopWindows(b, l, a)
				p7 := ws[len(ws)-1]
				dv := m.DeltaV(b, a)
				dh := m.DeltaH(b, l, a)
				opt := m.OptimalOffset(b, l, a)
				for wl := 0; wl < m.Config().WLsPerLayer; wl++ {
					ber := m.BER(b, l, wl, a)
					sample := chip.SampleRetentionErrors(nand.Address{Block: b, Layer: l, WL: wl}, a)
					rec := []string{
						strconv.Itoa(b), strconv.Itoa(l), strconv.Itoa(wl),
						strconv.Itoa(a.PE), fmt.Sprintf("%g", a.RetentionMonths),
						fmt.Sprintf("%.6e", ber), strconv.Itoa(sample),
						fmt.Sprintf("%.4f", dh), fmt.Sprintf("%.4f", dv),
						strconv.Itoa(p7.MinLoop), strconv.Itoa(p7.MaxLoop),
						strconv.Itoa(opt),
					}
					if err := w.Write(rec); err != nil {
						fmt.Fprintln(os.Stderr, err)
						os.Exit(1)
					}
				}
			}
		}
	}
}
