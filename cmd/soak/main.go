// Command soak drives the block service with live concurrent clients
// while chaos runs underneath — random power cuts with remount, a die
// kill, and always-on program/erase/read fault injection — and then
// audits the contract:
//
//   - zero acked-write loss: every write a client saw acknowledged is
//     present after the final power cut + recovery (checked both
//     end-to-end via per-LPN stat probes and against the durability
//     ledger by the post-mount verifier);
//   - no stuck clients: every worker keeps completing calls and
//     finishes within its retry budget;
//   - honest observability: a /metrics scrape mid-chaos serves the
//     required families, every slo_tighten event in the structured log
//     carries its triggering p99 breach, and every remount event
//     carries a verify-pass verdict.
//
// With -ab it runs the identical scenario twice — static weights, then
// the online SLO controller — and reports the protected tenant's read
// p99 under both, demonstrating the controller's effect under chaos.
//
//	soak -dur 10s -clients 6 -cuts 3
//	soak -ab -dur 8s -clients 4
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cubeftl"
	"cubeftl/internal/metrics"
	"cubeftl/internal/server"
	"cubeftl/internal/telemetry"
)

const (
	tenantLat  = "lat"  // protected: read-heavy, SLO-targeted
	tenantBulk = "bulk" // best-effort: write-heavy cap donor
)

type config struct {
	dur       time.Duration
	clients   int
	cuts      int // power cuts (with remount) spread over the run
	killDie   int // dies to kill (-1 = none)
	seed      int64
	sloTarget time.Duration
	ab        bool
	slo       bool
	verbose   bool
}

func main() {
	var cfg config
	flag.DurationVar(&cfg.dur, "dur", 15*time.Second, "wall-clock duration of one leg")
	flag.IntVar(&cfg.clients, "clients", 6, "concurrent clients (>= 4; first half lat, rest bulk)")
	flag.IntVar(&cfg.cuts, "cuts", 2, "random power cuts (each followed by recovery) per leg")
	flag.IntVar(&cfg.killDie, "killdie", 1, "die to kill mid-run (-1 = none)")
	flag.Int64Var(&cfg.seed, "seed", 1, "harness RNG seed")
	flag.DurationVar(&cfg.sloTarget, "slo-target", 2*time.Millisecond, "lat tenant read-p99 objective")
	flag.BoolVar(&cfg.ab, "ab", false, "run twice (static weights, then SLO controller) and compare")
	flag.BoolVar(&cfg.slo, "slo", true, "enable the SLO controller (single-leg mode)")
	flag.BoolVar(&cfg.verbose, "v", false, "log chaos and server events")
	flag.Parse()
	if cfg.clients < 4 {
		log.Fatalf("soak: need >= 4 clients, got %d", cfg.clients)
	}

	if !cfg.ab {
		res := runLeg(cfg, cfg.slo)
		res.print(os.Stdout)
		if !res.pass() {
			os.Exit(1)
		}
		return
	}

	fmt.Println("soak A/B: identical chaos scenario, static weights vs SLO controller")
	static := runLeg(cfg, false)
	static.print(os.Stdout)
	controlled := runLeg(cfg, true)
	controlled.print(os.Stdout)

	fmt.Printf("\nlat read p99: static %v -> slo %v  (%d SLO adjustments, %d breaches)\n",
		static.latReadP99, controlled.latReadP99, controlled.adjustments, controlled.breaches)
	if !static.pass() || !controlled.pass() {
		os.Exit(1)
	}
}

// legResult is one leg's outcome.
type legResult struct {
	slo bool

	ops         int64
	writesAcked int64
	dupAcks     int64
	retries     int64
	dials       int64

	latReadP99  time.Duration
	bulkReadP99 time.Duration

	cuts        int64
	recoveries  int64
	adjustments int
	breaches    int64
	events      int64

	workerErrs []string
	auditErrs  []string
	stuck      bool
}

func (r *legResult) pass() bool {
	return !r.stuck && len(r.workerErrs) == 0 && len(r.auditErrs) == 0
}

func (r *legResult) print(w *os.File) {
	mode := "static"
	if r.slo {
		mode = "slo"
	}
	fmt.Fprintf(w, "\n[%s] %d ops, %d acked writes (%d dup-acked), %d retries, %d dials, %d cuts/%d recoveries\n",
		mode, r.ops, r.writesAcked, r.dupAcks, r.retries, r.dials, r.cuts, r.recoveries)
	fmt.Fprintf(w, "[%s] lat read p99 %v, bulk read p99 %v, %d SLO adjustments (%d breaches), %d events logged\n",
		mode, r.latReadP99, r.bulkReadP99, r.adjustments, r.breaches, r.events)
	for _, e := range r.workerErrs {
		fmt.Fprintf(w, "[%s] WORKER FAIL: %s\n", mode, e)
	}
	for _, e := range r.auditErrs {
		fmt.Fprintf(w, "[%s] AUDIT FAIL: %s\n", mode, e)
	}
	if r.stuck {
		fmt.Fprintf(w, "[%s] STUCK CLIENTS\n", mode)
	}
	if r.pass() {
		fmt.Fprintf(w, "[%s] PASS: zero acked-write loss, no stuck clients\n", mode)
	}
}

// worker is one live client's harness state.
type worker struct {
	id     int
	tenant string
	region [2]int64 // private LPN range [lo, hi)

	cl    *server.Client
	rng   *rand.Rand
	acked map[int64]bool // LPNs this worker saw durably acknowledged

	readLat  *metrics.Hist
	writeLat *metrics.Hist
	ops      atomic.Int64
	err      error
}

func runLeg(cfg config, slo bool) *legResult {
	res := &legResult{slo: slo}
	logf := func(string, ...any) {}
	if cfg.verbose {
		logf = log.New(os.Stderr, "", log.Ltime|log.Lmicroseconds).Printf
	}

	srv, err := server.New(server.Config{
		Device: cubeftl.Options{
			FTL:            cubeftl.FTLCube,
			Channels:       4,
			DiesPerChannel: 2,
			BlocksPerChip:  64,
			Seed:           uint64(cfg.seed),
			Recovery:       true,
			// Always-on fault chaos: transient read faults plus real
			// program/erase failures the FTL must absorb by retiring
			// blocks and re-issuing data.
			ProgramFailRate: 0.0005,
			EraseFailRate:   0.0005,
			ReadFaultRate:   0.002,
		},
		Tenants: []server.TenantDef{
			{Name: tenantLat, Weight: 4, SLOReadP99: cfg.sloTarget},
			{Name: tenantBulk, Weight: 1},
		},
		// A narrow dispatch width makes tenants genuinely contend at the
		// host, so arbitration weight and rate caps have teeth.
		DispatchWidth: 4,
		SLO: server.SLOConfig{
			Enabled:       slo,
			Interval:      10 * time.Millisecond,
			MinSamples:    12,
			RateFloorIOPS: 200,
		},
		PrefillPages: 2048,
		Logf:         logf,
		// Observability plane on: live /metrics plus the structured event
		// log the post-run audit replays.
		MetricsAddr: "127.0.0.1:0",
	})
	if err != nil {
		res.workerErrs = append(res.workerErrs, fmt.Sprintf("server: %v", err))
		return res
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		res.workerErrs = append(res.workerErrs, fmt.Sprintf("listen: %v", err))
		return res
	}
	addr := srv.Addr().String()

	// Partition the logical space: one private region per worker, so the
	// final audit can attribute every LPN to the client that wrote it.
	logical := int64(srv.Device().LogicalPages())
	regionSz := logical / int64(cfg.clients)
	workers := make([]*worker, cfg.clients)
	for i := range workers {
		tenant := tenantLat
		if i >= cfg.clients/2 {
			tenant = tenantBulk
		}
		workers[i] = &worker{
			id:       i,
			tenant:   tenant,
			region:   [2]int64{int64(i) * regionSz, int64(i+1) * regionSz},
			rng:      rand.New(rand.NewSource(cfg.seed + int64(i)*7919)),
			acked:    make(map[int64]bool),
			readLat:  metrics.NewHist(0),
			writeLat: metrics.NewHist(0),
		}
	}

	deadline := time.Now().Add(cfg.dur)
	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			w.run(addr, deadline, cfg)
		}(w)
	}

	// Chaos: cfg.cuts power cuts (each with immediate recovery) spread
	// over the leg, plus one die kill at the midpoint. Errors are
	// collected locally and merged only after the goroutine finishes.
	chaosDone := make(chan struct{})
	var chaosErrs []string
	go func() {
		defer close(chaosDone)
		type event struct {
			at time.Duration
			fn func()
		}
		var events []event
		for i := 0; i < cfg.cuts; i++ {
			frac := float64(i+1) / float64(cfg.cuts+1)
			events = append(events, event{
				at: time.Duration(float64(cfg.dur) * frac),
				fn: func() {
					if _, err := srv.Restart(); err != nil {
						chaosErrs = append(chaosErrs, fmt.Sprintf("mid-run recovery: %v", err))
					}
				},
			})
		}
		if cfg.killDie >= 0 {
			events = append(events, event{
				at: cfg.dur * 45 / 100,
				fn: func() { srv.KillDie(cfg.killDie) },
			})
		}
		start := time.Now()
		for _, ev := range events {
			wait := ev.at - time.Since(start)
			if wait > 0 {
				time.Sleep(wait)
			}
			if time.Now().After(deadline) {
				return
			}
			ev.fn()
		}
	}()

	// No-stuck-clients: every worker must finish within its retry
	// budget; give the whole fleet a grace window beyond the deadline.
	finished := make(chan struct{})
	go func() { wg.Wait(); close(finished) }()
	select {
	case <-finished:
	case <-time.After(cfg.dur + 60*time.Second):
		res.stuck = true
		return res
	}
	<-chaosDone
	res.auditErrs = append(res.auditErrs, chaosErrs...)

	// Final power cut + recovery, then audit every acked LPN through a
	// fresh client. Remount runs the ledger verifier: recovery itself
	// fails the leg if any durably-acked write is missing.
	if _, err := srv.Restart(); err != nil {
		res.auditErrs = append(res.auditErrs, fmt.Sprintf("final recovery: %v", err))
	} else {
		audit, err := server.Dial(server.ClientConfig{Addr: addr, Tenant: tenantLat})
		if err != nil {
			res.auditErrs = append(res.auditErrs, fmt.Sprintf("audit dial: %v", err))
		} else {
			for _, w := range workers {
				for lpn := range w.acked {
					mapped, err := audit.Stat(lpn)
					if err != nil {
						res.auditErrs = append(res.auditErrs, fmt.Sprintf("stat %d: %v", lpn, err))
						break
					}
					if !mapped {
						res.auditErrs = append(res.auditErrs,
							fmt.Sprintf("worker %d: acked write at lpn %d lost after recovery", w.id, lpn))
					}
				}
			}
			audit.Close()
		}
	}

	auditObservability(srv, cfg, res)

	// Collect results.
	latReads, bulkReads := metrics.NewHist(0), metrics.NewHist(0)
	for _, w := range workers {
		res.ops += w.ops.Load()
		res.writesAcked += int64(len(w.acked))
		res.retries += w.cl.Stats.Retries
		res.dials += w.cl.Stats.Dials
		res.dupAcks += w.cl.Stats.Duplicates
		if w.err != nil {
			res.workerErrs = append(res.workerErrs, fmt.Sprintf("worker %d (%s): %v", w.id, w.tenant, w.err))
		}
		if w.tenant == tenantLat {
			latReads.Merge(w.readLat)
		} else {
			bulkReads.Merge(w.readLat)
		}
	}
	if latReads.N() > 0 {
		res.latReadP99 = time.Duration(latReads.Percentile(99))
	}
	if bulkReads.N() > 0 {
		res.bulkReadP99 = time.Duration(bulkReads.Percentile(99))
	}
	st := srv.Stats()
	res.cuts, res.recoveries = st.PowerCuts, st.Recoveries
	decisions, breaches, _, _ := srv.SLOReport()
	res.adjustments, res.breaches = len(decisions), breaches
	if cfg.verbose {
		for _, d := range decisions {
			fmt.Fprintln(os.Stderr, d)
		}
	}
	srv.Close()
	return res
}

// auditObservability checks the observability plane against what the
// leg actually did: the live /metrics endpoint must serve the required
// families, and the structured event log must justify itself — every
// SLO tightening with a p99 breach, every remount with a verify-pass
// verdict, and chaos-op counts matching the server's own counters.
func auditObservability(srv *server.Server, cfg config, res *legResult) {
	fail := func(format string, args ...any) {
		res.auditErrs = append(res.auditErrs, fmt.Sprintf(format, args...))
	}

	addr := srv.MetricsAddr()
	if addr == "" {
		fail("observability: no /metrics address bound")
	} else {
		resp, err := http.Get("http://" + addr + "/metrics")
		if err != nil {
			fail("observability: scrape: %v", err)
		} else {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != 200 {
				fail("observability: /metrics status %d", resp.StatusCode)
			}
			for _, fam := range []string{
				"cube_server_up 1",
				`cube_tenant_read_p99_ns{tenant="lat"}`,
				"cube_slo_enabled",
				"cube_cube_retry_hits",
				"cube_ftl_die_0_degraded",
				"cube_events_total",
			} {
				if !strings.Contains(string(body), fam) {
					fail("observability: /metrics missing %q", fam)
				}
			}
		}
	}

	evs := srv.Events()
	res.events = int64(len(evs))
	var cuts, remounts, kills int64
	for _, ev := range evs {
		switch ev.Type {
		case telemetry.EvSLOTighten:
			if ev.Fields["p99_ns"] <= ev.Fields["target_ns"] {
				fail("event audit: slo_tighten for %s without a p99 breach (p99 %.0fns <= target %.0fns)",
					ev.Tenant, ev.Fields["p99_ns"], ev.Fields["target_ns"])
			}
		case telemetry.EvRemount:
			remounts++
			if ev.Fields["verified"] != 1 {
				fail("event audit: remount at sim %dns without a verify-pass verdict", ev.SimNs)
			}
		case telemetry.EvPowerCut:
			cuts++
		case telemetry.EvDieKill:
			kills++
		}
	}
	st := srv.Stats()
	if cuts != st.PowerCuts {
		fail("event audit: %d power_cut events, server counted %d", cuts, st.PowerCuts)
	}
	if remounts != st.Recoveries {
		fail("event audit: %d remount events, server counted %d recoveries", remounts, st.Recoveries)
	}
	// The die kill is timing-dependent (it may race a restart or the
	// deadline), so its event count is not asserted — but if one was
	// logged, it must name the requested die.
	if kills > 0 {
		for _, ev := range evs {
			if ev.Type == telemetry.EvDieKill && int(ev.Fields["die"]) != cfg.killDie {
				fail("event audit: die_kill names die %.0f, requested %d", ev.Fields["die"], cfg.killDie)
			}
		}
	}
}

// run is one worker's live loop: lat tenants read-heavy, bulk tenants
// write-heavy, all ops inside the worker's private region.
func (w *worker) run(addr string, deadline time.Time, cfg config) {
	cl, err := server.Dial(server.ClientConfig{Addr: addr, Tenant: w.tenant})
	w.cl = cl
	if err != nil {
		w.err = err
		w.cl = &server.Client{}
		return
	}
	defer cl.Close()
	// lat: read-heavy single-page probes; bulk: write-heavy multi-page
	// streams that monopolize channels unless arbitration reins them in.
	writeFrac, pages := 0.2, 1
	if w.tenant == tenantBulk {
		writeFrac, pages = 0.8, 8
	}
	written := make([]int64, 0, 1024)
	for time.Now().Before(deadline) {
		doWrite := w.rng.Float64() < writeFrac || len(written) == 0
		if doWrite {
			lpn := w.region[0] + w.rng.Int63n(w.region[1]-w.region[0]-int64(pages))
			resu, err := cl.Write(lpn, pages)
			if err != nil {
				w.err = fmt.Errorf("write lpn %d: %w", lpn, err)
				return
			}
			for p := int64(0); p < int64(pages); p++ {
				if !w.acked[lpn+p] {
					w.acked[lpn+p] = true
					written = append(written, lpn+p)
				}
			}
			if !resu.Duplicate {
				w.writeLat.Add(int64(resu.Latency))
			}
		} else {
			lpn := written[w.rng.Intn(len(written))]
			resu, err := cl.Read(lpn, 1)
			if err != nil {
				w.err = fmt.Errorf("read lpn %d: %w", lpn, err)
				return
			}
			w.readLat.Add(int64(resu.Latency))
		}
		w.ops.Add(1)
	}
}
