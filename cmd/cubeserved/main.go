// Command cubeserved serves a simulated process-similarity SSD as a
// live TCP block service: per-tenant queue pairs with online SLO
// enforcement, durable write acks, idempotent retries, and the full
// crash-recovery path (checkpoint on SIGTERM, Mount + verify on boot).
//
//	cubeserved -addr 127.0.0.1:7443 \
//	    -tenant lat,weight=8,slo=2ms -tenant bulk,weight=1 -slo
//
// SIGINT/SIGTERM shuts down gracefully: clients get a GoingDown
// notice, in-flight I/O drains, the journal flushes, and a final
// checkpoint is written so the next boot mounts instantly.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"cubeftl"
	"cubeftl/internal/obs"
	"cubeftl/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7443", "listen address")
		ftlKind  = flag.String("ftl", cubeftl.FTLCube, "FTL policy: page|vert|isp|cube|cube-")
		channels = flag.Int("channels", 4, "flash channels")
		dies     = flag.Int("dies", 2, "dies per channel")
		blocks   = flag.Int("blocks", 64, "blocks per chip")
		seed     = flag.Uint64("seed", 1, "device RNG seed")
		recovery = flag.Bool("recovery", true, "enable crash consistency (durable acks, checkpoints, remount)")
		prefill  = flag.Int64("prefill", 0, "sequentially prefill this many logical pages before serving")
		arb      = flag.String("arb", cubeftl.ArbWRR, "queue arbiter: rr|wrr|prio")
		width    = flag.Int("width", 0, "dispatch width across queues (0 = sum of depths)")
		slo      = flag.Bool("slo", false, "enable the online SLO controller")
		sloIvl   = flag.Duration("slo-interval", 2*time.Millisecond, "simulated time between SLO decisions")

		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /healthz, /readyz on this address (e.g. 127.0.0.1:9090)")
		eventsOut   = flag.String("events-out", "", "append the structured JSONL event log (SLO decisions, chaos ops, recovery verdicts) to this file")
		spanSample  = flag.Int("span-sample", 0, "trace 1 in N device operations (0 = default 16; 1 = every op)")
	)
	var profile obs.ProfileConfig
	profile.RegisterFlags(flag.CommandLine)
	var tenants []server.TenantDef
	flag.Func("tenant", "tenant spec: name[,weight=N][,depth=N][,prio=N][,rate=IOPS][,slo=DUR] (repeatable)",
		func(spec string) error {
			td, err := parseTenant(spec)
			if err != nil {
				return err
			}
			tenants = append(tenants, td)
			return nil
		})
	flag.Parse()

	if len(tenants) == 0 {
		tenants = []server.TenantDef{
			{Name: "lat", Weight: 8, SLOReadP99: 2 * time.Millisecond},
			{Name: "bulk", Weight: 1},
		}
	}

	logger := log.New(os.Stderr, "", log.Ltime|log.Lmicroseconds)
	if err := profile.Start(); err != nil {
		logger.Fatalf("cubeserved: %v", err)
	}
	defer func() {
		if err := profile.Stop(); err != nil {
			logger.Printf("cubeserved: profiling: %v", err)
		}
	}()
	var eventsFile *os.File
	if *eventsOut != "" {
		f, err := os.Create(*eventsOut)
		if err != nil {
			logger.Fatalf("cubeserved: %v", err)
		}
		eventsFile = f
		defer eventsFile.Close()
	}
	var eventsW io.Writer
	if eventsFile != nil {
		eventsW = eventsFile
	}
	srv, err := server.New(server.Config{
		Device: cubeftl.Options{
			FTL:            *ftlKind,
			Channels:       *channels,
			DiesPerChannel: *dies,
			BlocksPerChip:  *blocks,
			Seed:           *seed,
			Recovery:       *recovery,
		},
		Tenants:       tenants,
		Arbiter:       *arb,
		DispatchWidth: *width,
		SLO:           server.SLOConfig{Enabled: *slo, Interval: *sloIvl},
		PrefillPages:  *prefill,
		Logf:          logger.Printf,
		MetricsAddr:   *metricsAddr,
		EventsOut:     eventsW,
		SpanSample:    *spanSample,
	})
	if err != nil {
		logger.Fatalf("cubeserved: %v", err)
	}
	if err := srv.Start(*addr); err != nil {
		logger.Fatalf("cubeserved: %v", err)
	}

	// Graceful shutdown: first signal drains + checkpoints; a second
	// forces exit.
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	sig := <-sigc
	logger.Printf("cubeserved: %v — draining and checkpointing (signal again to force)", sig)
	go func() {
		<-sigc
		logger.Printf("cubeserved: forced exit")
		os.Exit(1)
	}()
	srv.Close()

	st := srv.FinalStats()
	logger.Printf("cubeserved: done — %d conns, %d sessions, %d writes (%d dup-acked), %d reads, %d power cuts / %d recoveries",
		st.Conns, st.Sessions, st.Writes, st.Duplicates, st.Reads, st.PowerCuts, st.Recoveries)
}

// parseTenant parses "name[,k=v]...".
func parseTenant(spec string) (server.TenantDef, error) {
	parts := strings.Split(spec, ",")
	if parts[0] == "" {
		return server.TenantDef{}, fmt.Errorf("tenant spec %q: empty name", spec)
	}
	td := server.TenantDef{Name: parts[0], Weight: 1}
	for _, kv := range parts[1:] {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return td, fmt.Errorf("tenant spec %q: bad field %q", spec, kv)
		}
		var err error
		switch k {
		case "weight":
			td.Weight, err = strconv.Atoi(v)
		case "depth":
			td.Depth, err = strconv.Atoi(v)
		case "prio":
			td.Priority, err = strconv.Atoi(v)
		case "rate":
			td.RateIOPS, err = strconv.ParseFloat(v, 64)
		case "slo":
			td.SLOReadP99, err = time.ParseDuration(v)
		default:
			err = fmt.Errorf("unknown field %q", k)
		}
		if err != nil {
			return td, fmt.Errorf("tenant spec %q: %v", spec, err)
		}
	}
	return td, nil
}
