// Command cubefleet replays a real block trace (MSR-Cambridge or FIU
// format) onto a fleet of independent simulated SSDs — each shard its
// own device, FTL, and host-side DRAM cache — with thousands of
// logical tenants mapped onto the shards by a pluggable placement
// policy.
//
// Usage:
//
//	cubefleet -trace internal/workload/testdata/msr_sample.csv
//	cubefleet -trace t.csv -shards 8 -tenants 2048 -placement capacity \
//	          -cache-pages 4096 -cache-policy 2q -cache-mode back -repeat 8
//	cubefleet -trace t.csv -single          # one device, closed-loop replay
//
// The fleet report on stdout is deterministic: a fixed -seed and trace
// reproduce it byte for byte regardless of goroutine scheduling. Wall
// clock time goes to stderr, where it cannot perturb diffs.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cubeftl"
	"cubeftl/internal/obs"
)

func main() {
	tracePath := flag.String("trace", "", "block trace file to replay (required)")
	format := flag.String("format", "auto", "trace format: auto, msr, fiu")
	compress := flag.Float64("compress", 1, "time compression factor (10 = replay in 1/10 of trace time)")
	tolerant := flag.Bool("tolerant", false, "skip malformed records instead of failing")
	maxReq := flag.Int("max-requests", 0, "cap ingested requests (0 = whole trace)")

	single := flag.Bool("single", false, "replay on one device closed-loop instead of a fleet")

	shards := flag.Int("shards", 4, "independent simulated SSDs")
	tenants := flag.Int("tenants", 1024, "logical tenants across the fleet")
	placement := flag.String("placement", "hash", "tenant placement: hash, range, capacity")
	seed := flag.Uint64("seed", 1, "fleet seed (device personalities, placement)")
	ftlName := flag.String("ftl", "cube", "per-shard FTL: cube, page, vert")
	blocks := flag.Int("blocks", 16, "blocks per chip on each shard")
	channels := flag.Int("channels", 0, "channels per shard (0 = device default)")
	dies := flag.Int("dies", 0, "dies per channel (0 = device default)")
	capJitter := flag.Float64("capacity-jitter", 0, "per-shard capacity variation fraction (pairs with -placement capacity)")
	pe := flag.Int("pe", 0, "pre-aged P/E cycles per shard")
	retention := flag.Float64("retention", 0, "retention age in months")
	ageJitter := flag.Float64("age-jitter", 0, "per-shard P/E variation fraction")

	queues := flag.Int("queues", 8, "host queue pairs per shard")
	qd := flag.Int("qd", 32, "per-queue depth")

	cachePages := flag.Int("cache-pages", 0, "per-shard host DRAM cache size in 16 KiB pages (0 = off)")
	cachePolicy := flag.String("cache-policy", "lru", "cache replacement: lru, 2q")
	cacheMode := flag.String("cache-mode", "through", "cache write discipline: through, back")
	prefill := flag.Int64("prefill", 0, "sequentially map the first N pages of each shard before replay")
	repeat := flag.Int("repeat", 1, "replay the trace N times back to back")
	fleetMax := flag.Int("fleet-max-requests", 0, "cap total fleet requests after repeat expansion (0 = all)")

	statsOut := flag.String("stats-out", "", "write the merged fleet time series (one JSON object per interval) to this file")
	statsIvl := flag.Duration("stats-interval", time.Millisecond, "simulated time between fleet series samples")
	metricsAddr := flag.String("metrics-addr", "", "serve live /metrics for the run on this address (e.g. 127.0.0.1:9090)")
	var profile obs.ProfileConfig
	profile.RegisterFlags(flag.CommandLine)
	flag.Parse()

	if *tracePath == "" {
		fmt.Fprintln(os.Stderr, "cubefleet: -trace is required (e.g. internal/workload/testdata/msr_sample.csv)")
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*tracePath)
	if err != nil {
		fatal(err)
	}
	defer f.Close()

	if err := profile.Start(); err != nil {
		fatal(err)
	}
	defer func() {
		if err := profile.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "cubefleet: profiling:", err)
		}
	}()

	topt := cubeftl.TraceReplayOptions{
		Format:          *format,
		TimeCompression: *compress,
		Tolerant:        *tolerant,
		MaxRequests:     *maxReq,
		QueueDepth:      *qd,
	}

	if *single {
		ssd, err := cubeftl.New(cubeftl.Options{
			FTL:             *ftlName,
			BlocksPerChip:   *blocks,
			Channels:        *channels,
			DiesPerChannel:  *dies,
			Seed:            *seed,
			PECycles:        *pe,
			RetentionMonths: *retention,
		})
		if err != nil {
			fatal(err)
		}
		if *prefill > 0 {
			ssd.Prefill(*prefill)
			ssd.ResetStats()
		}
		start := time.Now()
		st, err := ssd.ReplayTrace(*tracePath, f, topt)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("single-device replay: ftl=%s requests=%d iops=%.0f elapsed=%v\n",
			ssd.FTLName(), st.Requests, st.IOPS, st.Elapsed)
		fmt.Printf("read_lat: p50=%v p90=%v p99=%v\n", st.ReadP50, st.ReadP90, st.ReadP99)
		fmt.Printf("write_lat: p50=%v p90=%v p99=%v\n", st.WriteP50, st.WriteP90, st.WriteP99)
		fmt.Printf("gc=%d retries=%d buffer_hits=%d trace_hash=%016x\n",
			st.GCRuns, st.ReadRetries, st.BufferHits, st.TraceHash)
		fmt.Fprintf(os.Stderr, "wall: %v\n", time.Since(start))
		return
	}

	var statsW *os.File
	if *statsOut != "" {
		statsW, err = os.Create(*statsOut)
		if err != nil {
			fatal(err)
		}
		defer statsW.Close()
	}
	var fleetObs *cubeftl.FleetObs
	if *metricsAddr != "" {
		fleetObs, err = cubeftl.StartFleetObs(*metricsAddr, *shards)
		if err != nil {
			fatal(err)
		}
		defer fleetObs.Close()
		fmt.Fprintf(os.Stderr, "metrics: http://%s/metrics\n", fleetObs.Addr())
	}

	fopts := cubeftl.FleetOptions{
		Shards:          *shards,
		Tenants:         *tenants,
		Placement:       *placement,
		Seed:            *seed,
		FTL:             *ftlName,
		BlocksPerChip:   *blocks,
		Channels:        *channels,
		DiesPerChannel:  *dies,
		CapacityJitter:  *capJitter,
		PE:              *pe,
		RetentionMonths: *retention,
		AgeJitter:       *ageJitter,
		QueuesPerShard:  *queues,
		QueueDepth:      *qd,
		CachePages:      *cachePages,
		CachePolicy:     *cachePolicy,
		CacheMode:       *cacheMode,
		PrefillPages:    *prefill,
		Repeat:          *repeat,
		MaxRequests:     *fleetMax,
		SampleInterval:  *statsIvl,
		Obs:             fleetObs,
	}
	if statsW != nil {
		fopts.StatsOut = statsW
	}
	if *statsOut == "" && *metricsAddr == "" {
		fopts.SampleInterval = 0 // no sink requested: skip sampling
	}
	st, err := cubeftl.RunFleet(fopts, *tracePath, f, topt)
	if err != nil {
		fatal(err)
	}
	// The deterministic report goes to stdout; wall clock — the one
	// number the host scheduler owns — goes to stderr.
	fmt.Print(st.Report)
	if st.SeriesSamples > 0 && *statsOut != "" {
		fmt.Fprintf(os.Stderr, "series: wrote %d samples to %s\n", st.SeriesSamples, *statsOut)
	}
	fmt.Fprintf(os.Stderr, "wall: %v\n", st.Wall)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cubefleet:", err)
	os.Exit(1)
}
