package cubeftl

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// telemetryRun executes a fixed-seed short Mixed run with full
// telemetry and returns the stats JSONL, the Chrome trace JSON, the
// breakdown table, and the run stats.
func telemetryRun(t *testing.T) (stats, trace []byte, breakdown string, rs RunStats) {
	t.Helper()
	dev, err := New(Options{FTL: FTLCube, BlocksPerChip: 16, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	dev.Prefill(int64(dev.LogicalPages()) * 6 / 10)
	dev.ResetStats()
	dev.EnableTelemetry(TelemetryConfig{Trace: true})
	var statsBuf bytes.Buffer
	if err := dev.StartStats(&statsBuf, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	rs, err = dev.RunWorkload("Mixed", 800, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.CloseStats(); err != nil {
		t.Fatal(err)
	}
	var traceBuf bytes.Buffer
	if err := dev.WriteChromeTrace(&traceBuf); err != nil {
		t.Fatal(err)
	}
	return statsBuf.Bytes(), traceBuf.Bytes(), dev.BreakdownTable(), rs
}

// Golden determinism: the same seed produces byte-identical stats JSONL
// and Chrome trace JSON on every execution.
func TestTelemetryOutputsByteIdentical(t *testing.T) {
	s1, t1, b1, _ := telemetryRun(t)
	s2, t2, b2, _ := telemetryRun(t)
	if !bytes.Equal(s1, s2) {
		t.Error("stats JSONL differs across identical runs")
	}
	if !bytes.Equal(t1, t2) {
		t.Error("Chrome trace differs across identical runs")
	}
	if b1 != b2 {
		t.Error("breakdown table differs across identical runs")
	}
}

// Schema check on real output: every stats line parses with a
// timestamp, tenant, die, and metrics section; the trace parses as
// trace_event JSON with the required fields.
func TestTelemetryOutputSchemas(t *testing.T) {
	stats, trace, breakdown, rs := telemetryRun(t)
	if rs.Requests != 800 {
		t.Fatalf("requests = %d", rs.Requests)
	}

	lines := bytes.Split(bytes.TrimSpace(stats), []byte("\n"))
	if len(lines) < 2 {
		t.Fatalf("stats lines = %d, want several", len(lines))
	}
	var lastTs int64 = -1
	for i, line := range lines {
		var smp struct {
			TsNs    int64             `json:"ts_ns"`
			Tenants []json.RawMessage `json:"tenants"`
			Dies    []json.RawMessage `json:"dies"`
			Metrics struct {
				Counters map[string]int64   `json:"counters"`
				Gauges   map[string]float64 `json:"gauges"`
				Hists    map[string]json.RawMessage
			} `json:"metrics"`
		}
		if err := json.Unmarshal(line, &smp); err != nil {
			t.Fatalf("stats line %d: %v", i, err)
		}
		if smp.TsNs < lastTs {
			t.Fatalf("stats timestamps not monotonic at line %d", i)
		}
		lastTs = smp.TsNs
		if len(smp.Tenants) != 1 {
			t.Errorf("line %d: tenants = %d", i, len(smp.Tenants))
		}
		if len(smp.Dies) != 8 {
			t.Errorf("line %d: dies = %d, want 8", i, len(smp.Dies))
		}
		if _, ok := smp.Metrics.Gauges["ftl/write_amp"]; !ok {
			t.Errorf("line %d: missing ftl/write_amp gauge", i)
		}
		if _, ok := smp.Metrics.Counters["ftl/requeue/fenced"]; !ok {
			t.Errorf("line %d: missing requeue counter", i)
		}
	}

	var doc struct {
		TraceEvents []struct {
			Ph  string   `json:"ph"`
			Ts  *float64 `json:"ts"`
			Pid *int     `json:"pid"`
			Tid *int     `json:"tid"`
			Dur *float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(trace, &doc); err != nil {
		t.Fatalf("trace JSON: %v", err)
	}
	var spans, instants int
	for i, ev := range doc.TraceEvents {
		if ev.Ph == "" || ev.Ts == nil || ev.Pid == nil || ev.Tid == nil {
			t.Fatalf("trace event %d missing ph/ts/pid/tid", i)
		}
		switch ev.Ph {
		case "X":
			if ev.Dur == nil {
				t.Fatalf("trace event %d: complete without dur", i)
			}
			spans++
		case "i":
			instants++
		}
	}
	if spans == 0 || instants == 0 {
		t.Errorf("trace has %d slices, %d instants", spans, instants)
	}

	if !strings.Contains(breakdown, "tenant/Mixed/read") ||
		!strings.Contains(breakdown, "p99") {
		t.Errorf("breakdown missing scopes:\n%s", breakdown)
	}
}

// Per-stage p99 components must sum (exactly — the breakdown reports a
// single retained sample's vector) to that sample's end-to-end latency,
// and the quoted latency must be the nearest-rank p99 of the span
// population the tracer retained.
func TestBreakdownP99SumsToEndToEnd(t *testing.T) {
	dev, err := New(Options{FTL: FTLCube, BlocksPerChip: 16, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	dev.Prefill(int64(dev.LogicalPages()) * 6 / 10)
	dev.ResetStats()
	dev.EnableTelemetry(TelemetryConfig{Trace: true})
	if _, err := dev.RunWorkload("Mixed", 800, 8); err != nil {
		t.Fatal(err)
	}
	stages := dev.Telemetry().Stages()
	for _, scope := range stages.Scopes() {
		d := stages.Scope(scope)
		for _, p := range []float64{50, 99} {
			v := d.AtPercentile(p)
			var sum int64
			for _, s := range v.Stage {
				sum += s
			}
			if sum != v.TotalNs {
				t.Errorf("%s p%v: stage sum %d != total %d", scope, p, sum, v.TotalNs)
			}
		}
	}
}

// Telemetry must be invisible to the simulation: the same run with
// telemetry fully enabled — or span-sampled 1-in-N — produces identical
// IOPS, latency percentiles, and grant TraceHash as a bare run.
func TestTelemetryDoesNotPerturbRun(t *testing.T) {
	run := func(mode string) (RunStats, MultiTenantStats) {
		dev, err := New(Options{FTL: FTLCube, BlocksPerChip: 16, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		dev.Prefill(int64(dev.LogicalPages()) * 6 / 10)
		dev.ResetStats()
		if mode != "off" {
			cfg := TelemetryConfig{Trace: true}
			if mode == "sampled" {
				cfg.SpanSample = 7
			}
			dev.EnableTelemetry(cfg)
			if err := dev.StartStats(&bytes.Buffer{}, time.Millisecond); err != nil {
				t.Fatal(err)
			}
		}
		rs, err := dev.RunWorkload("Mixed", 500, 8)
		if err != nil {
			t.Fatal(err)
		}
		mt, err := dev.RunTenants([]TenantConfig{
			{Workload: "OLTP", Requests: 300},
			{Workload: "Web", Requests: 300},
		}, ArbRR, 16)
		if err != nil {
			t.Fatal(err)
		}
		if mode != "off" {
			if err := dev.CloseStats(); err != nil {
				t.Fatal(err)
			}
		}
		return rs, mt
	}
	offR, offM := run("off")
	for _, mode := range []string{"full", "sampled"} {
		onR, onM := run(mode)
		if offR.IOPS != onR.IOPS || offR.ReadP99 != onR.ReadP99 || offR.Elapsed != onR.Elapsed {
			t.Errorf("%s: single-tenant run perturbed: off %+v, on %+v", mode, offR, onR)
		}
		if offM.TraceHash != onM.TraceHash || offM.Grants != onM.Grants || offM.Elapsed != onM.Elapsed {
			t.Errorf("%s: multi-tenant run perturbed: off hash %016x, on hash %016x",
				mode, offM.TraceHash, onM.TraceHash)
		}
	}
}

// A sampled run must trace roughly 1/N of the spans a full-trace run
// does — the point of sampling is that the retained set (and the cost
// of collecting it) shrinks while the simulation stays untouched.
func TestSpanSamplingReducesRetention(t *testing.T) {
	seen := func(sample int) int64 {
		dev, err := New(Options{FTL: FTLCube, BlocksPerChip: 16, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		dev.Prefill(int64(dev.LogicalPages()) * 6 / 10)
		dev.ResetStats()
		dev.EnableTelemetry(TelemetryConfig{Trace: true, SpanSample: sample})
		if _, err := dev.RunWorkload("Mixed", 800, 8); err != nil {
			t.Fatal(err)
		}
		return dev.Telemetry().Tracer().SpansSeen()
	}
	full := seen(0)
	sampled := seen(8)
	if full != 800 {
		t.Fatalf("full trace saw %d spans, want 800", full)
	}
	if sampled != 100 {
		t.Errorf("1-in-8 sample saw %d spans, want 100", sampled)
	}
}

func TestTelemetryAPIErrors(t *testing.T) {
	dev, err := New(Options{FTL: FTLPage, BlocksPerChip: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.WriteChromeTrace(&bytes.Buffer{}); err == nil {
		t.Error("WriteChromeTrace without telemetry accepted")
	}
	if err := dev.StartStats(&bytes.Buffer{}, time.Millisecond); err == nil {
		t.Error("StartStats without telemetry accepted")
	}
	if err := dev.CloseStats(); err == nil {
		t.Error("CloseStats without sampler accepted")
	}
	if dev.BreakdownTable() != "" {
		t.Error("breakdown without telemetry non-empty")
	}
	if err := dev.KillDie(99); err == nil {
		t.Error("KillDie out of range accepted")
	}
}
