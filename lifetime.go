package cubeftl

// Lifetime facade (DESIGN.md §17): age the device years in seconds and
// read back the wear and write-amplification state the lifetime figure
// plots. Aging is deterministic from Options.Seed — two same-seed
// devices aged by the same schedule are bit-identical media — and an
// aged device survives PowerCut/Remount because all of its state (per
// -block retention clocks, wear, grown bad blocks) lives in the NAND
// array, which is the durable medium.

import (
	"time"

	"cubeftl/internal/core"
	"cubeftl/internal/lifetime"
)

// AgeReport summarizes one aging fast-forward.
type AgeReport struct {
	Months         float64 // simulated months applied in this hop
	PEAdded        int64   // P/E cycles added across all blocks
	BadBlocksGrown int     // grown bad blocks accepted by the controller
	BucketJumps    int     // blocks that crossed a retry-table age bucket
	MinPE, MaxPE   int     // post-aging wear extremes over good blocks
	// ScrubQueued counts blocks the post-age patrol sweep queued for
	// refresh (zero unless Options.Refresh).
	ScrubQueued int
}

// Age fast-forwards the device by a wall-clock duration of simulated
// shelf/service life: per-block P/E wear accumulates at the lifetime
// package's configured rate, retention clocks of blocks holding data
// advance, bad blocks grow, and retry-table entries keyed to outgrown
// age buckets are invalidated. With Options.Refresh a patrol sweep then
// queues every block the refresh policy flags, and the simulation runs
// until the resulting relocations (and a checkpoint, when recovery is
// on) complete. Note Options.RetentionMonths pins an override that
// takes precedence over the per-block clocks; combine Age with
// Options.PECycles for pre-wear, not with pinned retention.
func (s *SSD) Age(d time.Duration) AgeReport {
	return s.AgeMonths(lifetime.DurationMonths(d))
}

// AgeMonths is Age with the device's native retention unit.
func (s *SSD) AgeMonths(months float64) AgeReport {
	if s.ager == nil {
		s.ager = lifetime.NewAger(lifetime.Config{Seed: s.opts.Seed})
	}
	hooks := lifetime.Hooks{GrowBad: s.ctrl.GrowBadBlock}
	if s.cube != nil {
		hooks.BucketJump = func(die, block, _, _ int) {
			s.cube.InvalidateBlockRetry(die, block)
		}
	}
	rep := s.ager.FastForward(s.dev.Array(), months, core.AgeBucketFor, hooks)
	// Aged cells see environmental drift on reads, same as PreAge.
	s.dev.SetReadJitterProb(0.5)
	out := AgeReport{
		Months:         rep.Months,
		PEAdded:        rep.PEAdded,
		BadBlocksGrown: rep.BadBlocksGrown,
		BucketJumps:    rep.BucketJumps,
		MinPE:          rep.MinPE,
		MaxPE:          rep.MaxPE,
	}
	s.drainRelocations() // settle grown-bad evacuations first
	if s.ctrlCfg.Refresh {
		// Sweep until clean. A block serving as an open write point is
		// excluded from a sweep (an active cursor cannot relocate), but
		// refresh churn fills and retires open blocks, so data written
		// before the age jump can surface as refreshable only on a later
		// pass. The loop is bounded: every pass rewrites what it queues,
		// and rewritten data is fresh.
		for i := 0; i < 8; i++ {
			q := s.ctrl.ScrubSweep()
			if q == 0 {
				break
			}
			out.ScrubQueued += q
			s.drainRelocations()
		}
	}
	if s.mgr != nil {
		// Persist the post-age mapping state so a power cut right after
		// aging remounts without replaying the whole refresh burst.
		s.mgr.CheckpointNow()
		s.drainRelocations()
	}
	return out
}

// drainRelocations runs the engine until host I/O, buffered writes, and
// background relocations (GC, refresh, wear leveling) all settle.
// Run's drain condition does not cover relocations: they are usually
// absorbed into host-I/O windows, but an Age-triggered scrub sweep runs
// with no host traffic outstanding.
func (s *SSD) drainRelocations() {
	s.eng.RunWhile(func() bool {
		return s.outstanding > 0 || !s.ctrl.Drained() || s.ctrl.GCActiveAny()
	})
}

// WAFStats is the per-cause write-amplification ledger: how many bytes
// of physical programming each cause issued since the last ResetStats,
// and the resulting write-amplification factor (total/host).
type WAFStats struct {
	HostBytes    int64
	GCBytes      int64
	RefreshBytes int64
	WLBytes      int64
	Factor       float64
	// Refreshes and WearLevels count the relocation operations behind
	// RefreshBytes and WLBytes.
	Refreshes  int64
	WearLevels int64
}

// WAF returns the device's per-cause write-amplification ledger.
func (s *SSD) WAF() WAFStats {
	w := s.ctrl.WAF()
	st := s.ctrl.Stats()
	return WAFStats{
		HostBytes:    w.HostBytes(),
		GCBytes:      w.GCBytes(),
		RefreshBytes: w.RefreshBytes(),
		WLBytes:      w.WLBytes(),
		Factor:       w.Factor(),
		Refreshes:    st.Refreshes,
		WearLevels:   st.WearLevels,
	}
}

// EraseQuantiles returns the erase-count quantiles (0..1, nearest-rank)
// of each die's good blocks: out[die][i] is die die's qs[i] quantile.
// The spread between low and high quantiles is what wear leveling
// narrows.
func (s *SSD) EraseQuantiles(qs []float64) [][]int {
	snap := lifetime.TakeEraseSnapshot(s.dev.Array())
	out := make([][]int, len(snap.Dies))
	for d := range snap.Dies {
		row := make([]int, len(qs))
		for i, q := range qs {
			row[i] = snap.DieQuantile(d, q)
		}
		out[d] = row
	}
	return out
}

// WearSpread returns the device-wide erase-count spread (max-min over
// every good block).
func (s *SSD) WearSpread() int {
	return lifetime.TakeEraseSnapshot(s.dev.Array()).Spread()
}
