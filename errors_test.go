package cubeftl

import (
	"errors"
	"fmt"
	"testing"

	"cubeftl/internal/ftl"
	"cubeftl/internal/host"
	"cubeftl/internal/ssd"
)

// The facade aliases must be the same values the internal packages
// return, so errors wrapped at any layer classify identically on both
// sides of the boundary.
func TestErrorAliasesCrossFacadeBoundary(t *testing.T) {
	cases := []struct {
		name     string
		internal error
		facade   error
	}{
		{"queue-full", host.ErrQueueFull, ErrQueueFull},
		{"bad-queue", host.ErrBadQueue, ErrBadQueue},
		{"die-fenced", ssd.ErrDieFenced, ErrDieFenced},
		{"degraded", ftl.ErrDegraded, ErrDegraded},
		{"bad-lpn", ftl.ErrBadLPN, ErrBadLPN},
	}
	for _, c := range cases {
		wrapped := fmt.Errorf("layer context: %w", c.internal)
		if !errors.Is(wrapped, c.facade) {
			t.Errorf("%s: internal error does not match facade sentinel", c.name)
		}
		wrapped = fmt.Errorf("client context: %w", c.facade)
		if !errors.Is(wrapped, c.internal) {
			t.Errorf("%s: facade error does not match internal sentinel", c.name)
		}
	}
}

func TestRetryableTerminalClassification(t *testing.T) {
	retryable := []error{
		ErrQueueFull,
		fmt.Errorf("host: %w: tenant db (depth 16)", host.ErrQueueFull),
		ErrDieFenced,
		fmt.Errorf("wrapped: %w", ssd.ErrDieFenced),
	}
	terminal := []error{
		ErrBadLPN,
		fmt.Errorf("%w: 99999", ftl.ErrBadLPN),
		ErrBadQueue,
		ErrDegraded,
		fmt.Errorf("write refused: %w", ftl.ErrDegraded),
		host.ErrUnknownArbiter,
		host.ErrNoQueues,
	}
	for _, err := range retryable {
		if !Retryable(err) {
			t.Errorf("Retryable(%v) = false", err)
		}
		if Terminal(err) {
			t.Errorf("Terminal(%v) = true for a retryable error", err)
		}
	}
	for _, err := range terminal {
		if !Terminal(err) {
			t.Errorf("Terminal(%v) = false", err)
		}
		if Retryable(err) {
			t.Errorf("Retryable(%v) = true for a terminal error", err)
		}
	}
	// Unknown errors classify as neither: the caller must not assume a
	// retry is safe, nor that the condition is permanent.
	unknown := errors.New("something else")
	if Retryable(unknown) || Terminal(unknown) {
		t.Error("unknown error classified")
	}
}

// End to end: errors produced by live facade calls classify correctly.
func TestLiveErrorsClassify(t *testing.T) {
	dev, err := New(Options{BlocksPerChip: 16, Channels: 1, DiesPerChannel: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	werr := dev.Write(int64(dev.LogicalPages())+5, nil)
	if !errors.Is(werr, ErrBadLPN) {
		t.Fatalf("out-of-range write: %v, want ErrBadLPN", werr)
	}
	if !Terminal(werr) || Retryable(werr) {
		t.Fatalf("out-of-range write misclassified: %v", werr)
	}
}
